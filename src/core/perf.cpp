#include "core/perf.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "analysis/dataset.hpp"

namespace symfail::core {
namespace {

double steadySeconds() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::string jsonNum(double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    return buf;
}

std::string u64(std::uint64_t value) {
    return std::to_string(static_cast<unsigned long long>(value));
}

double mb(std::uint64_t bytes) {
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace

PerfReport runPerfScaling(const PerfOptions& options) {
    PerfReport report;
    report.seed = options.seed;
    report.sampleHours = options.sampleHours;
    report.samplingStride = options.samplingStride;
    for (const int phones : options.fleetSizes) {
        fleet::FleetConfig config = options.base;
        config.phoneCount = phones;
        config.campaign = sim::Duration::days(options.days);
        if (config.enrollmentWindow > config.campaign) {
            config.enrollmentWindow = config.campaign / 2;
        }
        config.seed = options.seed;

        obs::ResourceAccountant accountant;
        obs::CampaignProfiler profiler;
        profiler.setSamplingStride(options.samplingStride);
        config.obs.accountant = &accountant;
        config.obs.accountingInterval = sim::Duration::hours(options.sampleHours);
        config.obs.profiler = &profiler;

        const double wallStart = steadySeconds();
        fleet::FleetResult result;
        {
            obs::ScopedPhase bracket{&profiler, "campaign"};
            result = fleet::runCampaign(config);
        }
        {
            obs::ScopedPhase bracket{&profiler, "analysis"};
            const auto dataset = analysis::LogDataset::build(result.logs);
            accountant.record("analysis", dataset.approxMemoryBytes());
        }
        const double wallSeconds = steadySeconds() - wallStart;

        PerfCell cell;
        cell.phones = phones;
        cell.days = options.days;
        cell.accounts = accountant.accounts();
        cell.totalBytes = accountant.totalBytes();
        cell.peakTotalBytes = accountant.peakTotalBytes();
        cell.bytesPerPhone = static_cast<double>(cell.peakTotalBytes) /
                             static_cast<double>(phones);
        cell.accountingSamples = accountant.samplesTaken();
        cell.queueDepthPeak = result.queueDepthPeak;
        cell.simulatorEvents = result.simulatorEvents;
        cell.phoneHours = fleet::expectedObservedHours(config);
        cell.wallSeconds = wallSeconds;
        cell.phoneHoursPerSec =
            wallSeconds > 0.0 ? cell.phoneHours / wallSeconds : 0.0;
        cell.peakRssBytes = obs::readPeakRssBytes();
        cell.hotspots = profiler.byCategory();
        if (cell.hotspots.size() > 8) cell.hotspots.resize(8);
        cell.phases = profiler.byPhase();
        report.cells.push_back(std::move(cell));
    }
    return report;
}

std::string renderPerfText(const PerfReport& report) {
    std::string out = "perf scaling report (seed " + u64(report.seed) +
                      ", sweep every " + std::to_string(report.sampleHours) +
                      " h, profiler stride " + u64(report.samplingStride) + ")\n";
    char buf[256];
    for (const PerfCell& cell : report.cells) {
        std::snprintf(buf, sizeof buf, "\n== %d phones x %lld days ==\n",
                      cell.phones, cell.days);
        out += buf;
        std::snprintf(buf, sizeof buf,
                      "  throughput   %10.0f phone-hours/sec "
                      "(%.1f phone-hours in %.2f s)\n",
                      cell.phoneHoursPerSec, cell.phoneHours, cell.wallSeconds);
        out += buf;
        std::snprintf(buf, sizeof buf,
                      "  footprint    %10.2f MB peak accounted "
                      "(%.0f bytes/phone), %.2f MB peak RSS\n",
                      mb(cell.peakTotalBytes), cell.bytesPerPhone,
                      mb(cell.peakRssBytes));
        out += buf;
        std::snprintf(buf, sizeof buf,
                      "  simulator    %llu events, queue depth peak %zu, "
                      "%llu accounting samples\n",
                      static_cast<unsigned long long>(cell.simulatorEvents),
                      cell.queueDepthPeak,
                      static_cast<unsigned long long>(cell.accountingSamples));
        out += buf;
        out += "  bytes by subsystem (current / peak):\n";
        for (const auto& account : cell.accounts) {
            std::snprintf(buf, sizeof buf, "    %-10s %12llu %12llu\n",
                          account.subsystem.c_str(),
                          static_cast<unsigned long long>(account.currentBytes),
                          static_cast<unsigned long long>(account.peakBytes));
            out += buf;
        }
        if (!cell.phases.empty()) {
            out += "  host time by phase (exact):\n";
            for (const auto& phase : cell.phases) {
                std::snprintf(buf, sizeof buf, "    %-10s %9.3f s\n",
                              phase.phase.c_str(), phase.hostSeconds);
                out += buf;
            }
        }
        if (!cell.hotspots.empty()) {
            out += "  hotspots by event category (estimated):\n";
            for (const auto& hot : cell.hotspots) {
                std::snprintf(buf, sizeof buf, "    %-22s %9.3f s  %10llu events\n",
                              hot.category.c_str(), hot.hostSeconds,
                              static_cast<unsigned long long>(hot.events));
                out += buf;
            }
        }
    }
    return out;
}

std::string perfToJson(const PerfReport& report) {
    std::string json = "{\n\"seed\": " + u64(report.seed) +
                       ",\n\"sample_hours\": " + std::to_string(report.sampleHours) +
                       ",\n\"sampling_stride\": " + u64(report.samplingStride) +
                       ",\n\"cells\": [";
    for (std::size_t i = 0; i < report.cells.size(); ++i) {
        const PerfCell& cell = report.cells[i];
        if (i != 0) json += ",";
        json += "\n{\n\"phones\": " + std::to_string(cell.phones) +
                ",\n\"days\": " + std::to_string(cell.days) +
                ",\n\"accounting\": {\n";
        json += "\"total_bytes\": " + u64(cell.totalBytes) +
                ",\n\"peak_total_bytes\": " + u64(cell.peakTotalBytes) +
                ",\n\"bytes_per_phone\": " + jsonNum(cell.bytesPerPhone) +
                ",\n\"samples\": " + u64(cell.accountingSamples) +
                ",\n\"queue_depth_peak\": " + std::to_string(cell.queueDepthPeak) +
                ",\n\"simulator_events\": " + u64(cell.simulatorEvents) +
                ",\n\"phone_hours\": " + jsonNum(cell.phoneHours) +
                ",\n\"subsystems\": {";
        for (std::size_t j = 0; j < cell.accounts.size(); ++j) {
            const auto& account = cell.accounts[j];
            if (j != 0) json += ", ";
            json += "\"" + account.subsystem + "\": {\"bytes\": " +
                    u64(account.currentBytes) + ", \"peak_bytes\": " +
                    u64(account.peakBytes) + ", \"samples\": " +
                    u64(account.samples) + "}";
        }
        json += "}\n},\n\"host\": {\n";
        json += "\"wall_seconds\": " + jsonNum(cell.wallSeconds) +
                ",\n\"phone_hours_per_sec\": " + jsonNum(cell.phoneHoursPerSec) +
                ",\n\"peak_rss_bytes\": " + u64(cell.peakRssBytes) +
                ",\n\"phases\": {";
        for (std::size_t j = 0; j < cell.phases.size(); ++j) {
            if (j != 0) json += ", ";
            json += "\"" + cell.phases[j].phase +
                    "\": " + jsonNum(cell.phases[j].hostSeconds);
        }
        json += "},\n\"hotspots\": [";
        for (std::size_t j = 0; j < cell.hotspots.size(); ++j) {
            const auto& hot = cell.hotspots[j];
            if (j != 0) json += ", ";
            json += "{\"category\": \"" + hot.category +
                    "\", \"events\": " + u64(hot.events) +
                    ", \"host_seconds\": " + jsonNum(hot.hostSeconds) + "}";
        }
        json += "]\n}\n}";
    }
    json += "\n]\n}\n";
    return json;
}

std::vector<std::string> exportPerfCsv(const PerfReport& report,
                                       const std::string& directory) {
    namespace fs = std::filesystem;
    fs::create_directories(directory);
    const std::string path = (fs::path{directory} / "perf_scaling.csv").string();
    std::string csv =
        "phones,days,subsystem,bytes,peak_bytes,bytes_per_phone,"
        "phone_hours_per_sec,wall_seconds,peak_rss_bytes,queue_depth_peak\n";
    for (const PerfCell& cell : report.cells) {
        const std::string prefix =
            std::to_string(cell.phones) + "," + std::to_string(cell.days) + ",";
        for (const auto& account : cell.accounts) {
            csv += prefix + account.subsystem + "," + u64(account.currentBytes) +
                   "," + u64(account.peakBytes) + ",,,,,\n";
        }
        csv += prefix + "total," + u64(cell.totalBytes) + "," +
               u64(cell.peakTotalBytes) + "," + jsonNum(cell.bytesPerPhone) + "," +
               jsonNum(cell.phoneHoursPerSec) + "," + jsonNum(cell.wallSeconds) +
               "," + u64(cell.peakRssBytes) + "," +
               std::to_string(cell.queueDepthPeak) + "\n";
    }
    std::ofstream out{path, std::ios::binary};
    out << csv;
    if (!out) throw std::runtime_error("cannot write " + path);
    return {path};
}

void publishPerfMetrics(const PerfReport& report, obs::MetricsRegistry& registry) {
    for (const PerfCell& cell : report.cells) {
        const std::string label = std::to_string(cell.phones);
        registry
            .gauge("perf", "bytes_per_phone", "phones", label,
                   "Peak accounted bytes per phone at this fleet size")
            .set(cell.bytesPerPhone);
        registry
            .gauge("perf", "peak_total_bytes", "phones", label,
                   "Peak accounted bytes across subsystems")
            .set(static_cast<double>(cell.peakTotalBytes));
        registry
            .gauge("perf", "phone_hours_per_sec", "phones", label,
                   "Simulated phone-hours per wall-clock second")
            .set(cell.phoneHoursPerSec);
        registry
            .gauge("perf", "wall_seconds", "phones", label,
                   "Wall-clock seconds for campaign plus analysis")
            .set(cell.wallSeconds);
        registry
            .gauge("perf", "peak_rss_bytes", "phones", label,
                   "Host peak resident-set size after this cell")
            .set(static_cast<double>(cell.peakRssBytes));
        registry
            .gauge("perf", "queue_depth_peak", "phones", label,
                   "Largest pending-event count at any dispatch")
            .set(static_cast<double>(cell.queueDepthPeak));
        for (const auto& account : cell.accounts) {
            registry
                .gauge("perf", "subsystem_bytes_" + account.subsystem, "phones",
                       label, "Final-sweep bytes held by one subsystem")
                .set(static_cast<double>(account.currentBytes));
        }
    }
}

}  // namespace symfail::core
