#include "core/render.hpp"

#include <array>

#include "analysis/tables.hpp"
#include "transport/metrics.hpp"

namespace symfail::core {

using analysis::TextTable;

std::string renderTable1(const forum::ForumStudyResult& result) {
    using namespace symfail::forum;
    TextTable table{{"failure type", "reboot", "battery", "wait", "repeat", "unrep.",
                     "service", "total", "paper total"}};
    constexpr std::array<RecoveryAction, 6> kColumns{
        RecoveryAction::Reboot,       RecoveryAction::RemoveBattery,
        RecoveryAction::Wait,         RecoveryAction::RepeatAction,
        RecoveryAction::Unreported,   RecoveryAction::ServicePhone,
    };
    for (std::size_t t = 0; t < kFailureTypeCount; ++t) {
        const auto type = static_cast<FailureType>(t);
        std::vector<std::string> row{std::string{toString(type)}};
        for (const auto recovery : kColumns) {
            row.push_back(TextTable::num(result.percent(type, recovery)));
        }
        row.push_back(TextTable::num(result.typePercent(type), 1));
        row.push_back(TextTable::num(paperFailureTypePercent(type), 1));
        table.addRow(std::move(row));
    }
    return "Table 1 - failure type vs recovery action (% of classified failure "
           "reports)\n" +
           table.render();
}

std::string renderForumSummary(const forum::ForumStudyResult& result) {
    using namespace symfail::forum;
    std::string out;
    out += "Forum study summary\n";
    out += "  corpus size: " + std::to_string(result.corpusSize) +
           " posts, classified failure reports: " +
           std::to_string(result.classifiedFailures) + "\n";
    out += "  smart-phone share: " +
           TextTable::num(100.0 * result.smartPhoneShare, 1) + "% (paper: 22.3%)\n";
    out += "  severity: low " + TextTable::num(result.severityPercent(Severity::Low), 1) +
           "%, medium " + TextTable::num(result.severityPercent(Severity::Medium), 1) +
           "%, high " + TextTable::num(result.severityPercent(Severity::High), 1) +
           "%, unknown " +
           TextTable::num(result.severityPercent(Severity::Unknown), 1) + "%\n";
    out += "  activity: voice " +
           TextTable::num(result.activityPercent(ReportedActivity::VoiceCall), 1) +
           "% (paper 13.0), message " +
           TextTable::num(result.activityPercent(ReportedActivity::TextMessage), 1) +
           "% (paper 5.4), bluetooth " +
           TextTable::num(result.activityPercent(ReportedActivity::Bluetooth), 1) +
           "% (paper 3.6), images " +
           TextTable::num(result.activityPercent(ReportedActivity::Images), 1) +
           "% (paper 2.4)\n";
    out += "  classifier: filter precision " +
           TextTable::num(100.0 * result.filterPrecision, 1) + "%, recall " +
           TextTable::num(100.0 * result.filterRecall, 1) + "%, type accuracy " +
           TextTable::num(100.0 * result.typeAccuracy, 1) + "%, recovery accuracy " +
           TextTable::num(100.0 * result.recoveryAccuracy, 1) + "%\n";
    return out;
}

std::string renderFig2(const FieldStudyResults& results) {
    std::string out = "Figure 2 - distribution of reboot durations\n";
    const auto full = analysis::ShutdownDiscriminator::rebootDurationHistogram(
        results.dataset, 40'000.0, 40);
    out += "full range (0-40000 s, 1000 s bins):\n" + full.renderAscii();
    const auto zoom = analysis::ShutdownDiscriminator::rebootDurationHistogram(
        results.dataset, 500.0, 25);
    out += "zoom (duration < 500 s, 20 s bins):\n" + zoom.renderAscii();
    out += "self-shutdown peak (zoom mode midpoint): " +
           analysis::TextTable::num(zoom.modeMidpoint(), 0) +
           " s (paper: ~80 s); classification threshold " +
           analysis::TextTable::num(results.classification.selfShutdowns.empty()
                                        ? analysis::kSelfShutdownThresholdSeconds
                                        : analysis::kSelfShutdownThresholdSeconds,
                                    0) +
           " s\n";
    out += "self-shutdowns: " + std::to_string(results.classification.selfShutdowns.size()) +
           " of " + std::to_string(results.classification.totalRebootEvents()) +
           " reboot events (" +
           analysis::TextTable::num(100.0 * results.classification.selfFraction(), 1) +
           "%; paper: 471 of 1778, 26.5%)\n";
    return out;
}

std::string renderTable2(const FieldStudyResults& results) {
    TextTable table{{"panic", "count", "measured %", "paper %"}};
    for (const auto& row : results.table2) {
        table.addRow({symbos::toString(row.panic), std::to_string(row.count),
                      TextTable::num(row.percent), TextTable::num(row.paperPercent)});
    }
    std::string out = "Table 2 - collected panic events (" +
                      std::to_string(results.dataset.panics().size()) +
                      " panics; paper: ~396)\n" + table.render();
    out += "E32USER-CBase (heap management) share: " +
           TextTable::num(analysis::categoryShare(results.dataset,
                                                  symbos::PanicCategory::E32UserCBase),
                          1) +
           "% (paper: 18.4%)\n";
    out += "KERN-EXEC 3 (access violation) dominates as in the paper (56.3%).\n";
    return out;
}

std::string renderFig3(const FieldStudyResults& results) {
    TextTable table{{"burst length", "count", "% of bursts"}};
    const auto& lengths = results.fig3BurstLengths;
    for (const auto& [len, count] : lengths.entries()) {
        table.addRow({std::to_string(len), std::to_string(count),
                      TextTable::num(100.0 * lengths.fraction(len), 1)});
    }
    std::string out = "Figure 3 - distribution of subsequent panics\n" + table.render();
    out += "bursts of >= 2 panics: " +
           TextTable::num(100.0 * analysis::burstFraction(lengths), 1) +
           "% (paper: ~25%)\n";
    return out;
}

std::string renderFig5(const FieldStudyResults& results) {
    const auto& coal = results.fig5Coalescence;
    TextTable table{{"category", "panics", "-> freeze", "-> self-shutdown",
                     "isolated"}};
    for (const auto& row : coal.byCategory) {
        table.addRow({std::string{symbos::toString(row.category)},
                      std::to_string(row.total), std::to_string(row.toFreeze),
                      std::to_string(row.toSelfShutdown),
                      std::to_string(row.isolated())});
    }
    std::string out = "Figure 5 - panics and high-level events (window 5 min)\n" +
                      table.render();
    out += "panics related to HL events: " +
           TextTable::num(100.0 * coal.relatedFraction(), 1) + "% (paper: 51%)\n";
    out += "HL events with a recorded panic: " + std::to_string(coal.hlWithPanic) +
           " of " + std::to_string(coal.hlTotal) + "\n";
    return out;
}

std::string renderTable3(const FieldStudyResults& results) {
    const auto& corr = results.table3;
    TextTable table{{"category", "voice call", "message", "unspecified"}};
    for (const auto& row : corr.rows) {
        table.addRow({std::string{symbos::toString(row.category)},
                      std::to_string(row.voiceCall), std::to_string(row.message),
                      std::to_string(row.unspecified)});
    }
    std::string out =
        "Table 3 - panic-activity relationship (HL-related panics)\n" + table.render();
    out += "activity split: voice " + TextTable::num(corr.voicePercent, 1) +
           "% (paper 38.6), message " + TextTable::num(corr.messagePercent, 1) +
           "% (paper 6.6), unspecified " + TextTable::num(corr.unspecifiedPercent, 1) +
           "% (paper 54.8)\n";
    return out;
}

std::string renderFig6(const FieldStudyResults& results) {
    TextTable table{{"apps at panic time", "panics", "%"}};
    const auto& counts = results.fig6AppCounts;
    for (const auto& [n, count] : counts.entries()) {
        table.addRow({std::to_string(n), std::to_string(count),
                      TextTable::num(100.0 * counts.fraction(n), 1)});
    }
    std::string out = "Figure 6 - running applications at panic time\n" + table.render();
    out += "mean: " + TextTable::num(counts.mean()) +
           " (paper: mode at one application)\n";
    return out;
}

std::string renderTable4(const FieldStudyResults& results) {
    TextTable table{{"category", "HL outcome", "application", "count",
                     "% of all panics"}};
    auto relationName = [](analysis::PanicRelation r) -> std::string {
        switch (r) {
            case analysis::PanicRelation::Freeze: return "freeze";
            case analysis::PanicRelation::SelfShutdown: return "self-shutdown";
            case analysis::PanicRelation::Isolated: return "none";
        }
        return "?";
    };
    for (const auto& row : results.table4) {
        table.addRow({std::string{symbos::toString(row.category)},
                      relationName(row.relation), row.app, std::to_string(row.count),
                      TextTable::num(row.percentOfAllPanics)});
    }
    std::string out =
        "Table 4 - panic vs running applications (cells >= 0.2% of panics)\n" +
        table.render();
    const auto totals = analysis::appTotals(results.dataset);
    if (!totals.empty()) {
        out += "most implicated application: " + totals.front().app + " (" +
               TextTable::num(totals.front().percentOfAllPanics, 1) +
               "% of panics; paper: Messages, 8.18%)\n";
    }
    return out;
}

std::string renderCrashFamilies(const FieldStudyResults& results) {
    const auto& report = results.crashFamilies;
    TextTable table{{"family", "panic", "dumps", "share %", "MTBF (h)", "phones",
                     "sigs", "top app"}};
    for (const auto& row : report.rows) {
        table.addRow({row.familyId, symbos::toString(row.panic),
                      std::to_string(row.dumps), TextTable::num(row.sharePct),
                      TextTable::num(row.mtbfHours, 1), std::to_string(row.phones),
                      std::to_string(row.distinctSignatures),
                      row.topApp.empty() ? "-" : row.topApp});
    }
    std::string out = "Crash families - clustered structured dumps (" +
                      std::to_string(report.totalDumps) + " dumps, " +
                      std::to_string(report.familyCount()) + " families)\n" +
                      table.render();
    // Representative (normalized) backtraces of the largest families.
    const std::size_t shown = std::min<std::size_t>(report.rows.size(), 8);
    for (std::size_t i = 0; i < shown; ++i) {
        const auto& row = report.rows[i];
        out += "  " + row.familyId + ": ";
        for (std::size_t f = 0; f < row.frames.size(); ++f) {
            if (f > 0) out += " < ";
            out += row.frames[f];
        }
        out += '\n';
    }
    if (report.rows.size() > shown) {
        out += "  ... " + std::to_string(report.rows.size() - shown) +
               " smaller families\n";
    }
    return out;
}

std::string renderHeadline(const FieldStudyResults& results) {
    const auto& mtbf = results.mtbf;
    std::string out = "Headline dependability figures\n";
    out += "  observed phone-time: " + TextTable::num(mtbf.observedPhoneHours, 0) +
           " h (paper: ~112,680 h)\n";
    out += "  freezes: " + std::to_string(mtbf.freezeCount) +
           " (paper: 360), self-shutdowns: " + std::to_string(mtbf.selfShutdownCount) +
           " (paper: 471)\n";
    out += "  MTBFr: " + TextTable::num(mtbf.mtbfFreezeHours, 0) +
           " h = a freeze every " + TextTable::num(mtbf.mtbfFreezeHours / 24.0, 1) +
           " days (paper: 313 h, ~13 days)\n";
    out += "  MTBS:  " + TextTable::num(mtbf.mtbfSelfShutdownHours, 0) +
           " h = a self-shutdown every " +
           TextTable::num(mtbf.mtbfSelfShutdownHours / 24.0, 1) +
           " days (paper: 250 h, ~10 days)\n";
    out += "  (the paper summarizes the two as \"a failure every 11 days on "
           "average\"; the combined interarrival is " +
           TextTable::num(mtbf.failureEveryDays(), 1) + " days here)\n";
    return out;
}

std::string renderPerPhone(const FieldStudyResults& results) {
    const auto rows = analysis::perPhoneMtbf(results.dataset, results.classification);
    TextTable table{{"phone", "observed h", "freezes", "self-shutdowns",
                     "failures/30d"}};
    for (const auto& row : rows) {
        const double per30d =
            row.observedHours <= 0.0
                ? 0.0
                : static_cast<double>(row.freezes + row.selfShutdowns) /
                      row.observedHours * 24.0 * 30.0;
        table.addRow({row.phoneName, TextTable::num(row.observedHours, 0),
                      std::to_string(row.freezes), std::to_string(row.selfShutdowns),
                      TextTable::num(per30d, 1)});
    }
    return "Per-phone dispersion\n" + table.render();
}

std::string renderEvaluation(const FieldStudyResults& results) {
    const auto& eval = results.evaluation;
    std::string out = "Ground-truth evaluation of the methodology\n";
    out += "  freeze detection: precision " +
           TextTable::num(100.0 * eval.freezeDetection.precision(), 1) + "%, recall " +
           TextTable::num(100.0 * eval.freezeDetection.recall(), 1) + "%\n";
    out += "  self-shutdown discrimination: precision " +
           TextTable::num(100.0 * eval.selfShutdownDetection.precision(), 1) +
           "%, recall " +
           TextTable::num(100.0 * eval.selfShutdownDetection.recall(), 1) + "%\n";
    out += "  panic capture: " + std::to_string(eval.panicsLogged) + " logged of " +
           std::to_string(eval.panicsInjected) + " injected (" +
           TextTable::num(100.0 * eval.panicCaptureRate(), 1) + "%)\n";
    return out;
}

std::string renderTransport(const FieldStudyResults& results) {
    std::string out = transport::renderTransportReport(results.fleet.transport);
    // Coverage loss as the *analysis* saw it (set when the pipeline ran on
    // collected rather than direct logs).
    if (!results.dataset.coverageLoss().empty()) {
        out += "  analysis ran on partial logs:\n";
        for (const auto& [phone, coverage] : results.dataset.coverageLoss()) {
            out += "    " + phone + " coverage " +
                   analysis::TextTable::num(100.0 * coverage, 1) + "%\n";
        }
    }
    return out;
}

}  // namespace symfail::core
