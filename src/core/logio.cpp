#include "core/logio.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace symfail::core {

std::vector<std::string> saveLogs(const std::vector<analysis::PhoneLog>& logs,
                                  const std::string& directory) {
    const std::filesystem::path dir{directory};
    std::filesystem::create_directories(dir);
    std::vector<std::string> written;
    for (const auto& log : logs) {
        const auto path = dir / (log.phoneName + ".log");
        std::ofstream out{path};
        if (!out) {
            throw std::runtime_error("cannot write " + path.string());
        }
        out << log.logFileContent;
        written.push_back(path.string());
    }
    return written;
}

std::vector<analysis::PhoneLog> loadLogs(const std::string& directory) {
    const std::filesystem::path dir{directory};
    if (!std::filesystem::is_directory(dir)) {
        throw std::runtime_error("not a directory: " + directory);
    }
    std::vector<analysis::PhoneLog> logs;
    for (const auto& entry : std::filesystem::directory_iterator{dir}) {
        if (!entry.is_regular_file() || entry.path().extension() != ".log") continue;
        std::ifstream in{entry.path()};
        if (!in) {
            throw std::runtime_error("cannot read " + entry.path().string());
        }
        analysis::PhoneLog log;
        log.phoneName = entry.path().stem().string();
        log.logFileContent.assign(std::istreambuf_iterator<char>{in},
                                  std::istreambuf_iterator<char>{});
        logs.push_back(std::move(log));
    }
    std::sort(logs.begin(), logs.end(),
              [](const analysis::PhoneLog& a, const analysis::PhoneLog& b) {
                  return a.phoneName < b.phoneName;
              });
    return logs;
}

}  // namespace symfail::core
