// Text renderers for every regenerated table and figure, with the paper's
// values side by side where the paper reports them.
#pragma once

#include <string>

#include "core/study.hpp"

namespace symfail::core {

/// Table 1: failure type x recovery action (% of failure reports).
[[nodiscard]] std::string renderTable1(const forum::ForumStudyResult& result);

/// Section 4 companion stats: type marginals, severity, activities,
/// smart-phone share, classifier quality.
[[nodiscard]] std::string renderForumSummary(const forum::ForumStudyResult& result);

/// Figure 2: reboot-duration distribution (full range + <500 s zoom).
[[nodiscard]] std::string renderFig2(const FieldStudyResults& results);

/// Table 2: panic classification, measured vs paper share.
[[nodiscard]] std::string renderTable2(const FieldStudyResults& results);

/// Figure 3: distribution of subsequent panics.
[[nodiscard]] std::string renderFig3(const FieldStudyResults& results);

/// Figure 5: panics vs HL events, overall and per category.
[[nodiscard]] std::string renderFig5(const FieldStudyResults& results);

/// Table 3: panic-activity relationship.
[[nodiscard]] std::string renderTable3(const FieldStudyResults& results);

/// Figure 6: running applications at panic time.
[[nodiscard]] std::string renderFig6(const FieldStudyResults& results);

/// Table 4: panic-running applications relationship.
[[nodiscard]] std::string renderTable4(const FieldStudyResults& results);

/// Crash families: the clustered structured dumps (count, share, MTBF,
/// per-phone spread, top running app, representative backtrace).
[[nodiscard]] std::string renderCrashFamilies(const FieldStudyResults& results);

/// Headline numbers: MTBFr/MTBS, failure every N days, event counts.
[[nodiscard]] std::string renderHeadline(const FieldStudyResults& results);

/// Ground-truth evaluation of the methodology.
[[nodiscard]] std::string renderEvaluation(const FieldStudyResults& results);

/// Transport section: what the lossy collection path delivered, what it
/// cost (retransmits, bytes on the wire), and per-phone coverage loss.
[[nodiscard]] std::string renderTransport(const FieldStudyResults& results);

/// Per-phone dispersion: observed hours, freezes and self-shutdowns for
/// each phone (field studies report aggregate MTBFs; the per-phone view
/// shows how unevenly failures distribute across users).
[[nodiscard]] std::string renderPerPhone(const FieldStudyResults& results);

}  // namespace symfail::core
