#include "core/study.hpp"

namespace symfail::core {

forum::ForumStudyResult FailureStudy::runForumStudy() const {
    return forum::runForumStudy(config_.forumConfig, config_.forumSeed);
}

void FailureStudy::runPipeline(FieldStudyResults& results) const {
    const analysis::ShutdownDiscriminator discriminator{
        config_.selfShutdownThresholdSeconds};
    results.classification = discriminator.classify(results.dataset);
    results.mtbf = analysis::estimateMtbf(results.dataset, results.classification);
    results.table2 = analysis::panicTable(results.dataset);
    results.fig3BurstLengths = analysis::burstLengths(results.dataset);
    results.fig5Coalescence =
        analysis::coalesce(results.dataset, results.classification,
                           config_.coalescenceWindowSeconds);
    results.table3 = analysis::activityCorrelation(results.fig5Coalescence);
    results.fig6AppCounts = analysis::runningAppCounts(results.dataset);
    results.table4 = analysis::appCorrelation(results.fig5Coalescence);
    results.crashFamilies = analysis::buildCrashFamilyReport(results.dataset);
}

FieldStudyResults FailureStudy::runFieldStudy() const {
    FieldStudyResults results;
    results.fleet = fleet::runCampaign(config_.fleetConfig);
    results.dataset = analysis::LogDataset::build(results.fleet.logs);
    runPipeline(results);
    results.evaluation = analysis::evaluate(results.dataset, results.classification,
                                            results.fleet.truthMap());
    return results;
}

FieldStudyResults FailureStudy::analyzeLogs(std::vector<analysis::PhoneLog> logs) const {
    FieldStudyResults results;
    results.fleet.logs = std::move(logs);
    results.dataset = analysis::LogDataset::build(results.fleet.logs);
    runPipeline(results);
    return results;
}

}  // namespace symfail::core
