#include "core/export.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string_view>

#include "analysis/tables.hpp"

namespace symfail::core {
namespace {

using analysis::TextTable;

void writeFile(const std::filesystem::path& path, const std::string& content,
               std::vector<std::string>& written) {
    std::ofstream out{path};
    if (!out) {
        throw std::runtime_error("cannot write " + path.string());
    }
    out << content;
    written.push_back(path.string());
}

std::string histogramCsv(const sim::Histogram& hist) {
    TextTable table{{"bin_lo", "bin_hi", "count"}};
    for (std::size_t i = 0; i < hist.binCount(); ++i) {
        if (hist.binValue(i) == 0) continue;
        table.addRow({TextTable::num(hist.binLo(i), 1), TextTable::num(hist.binHi(i), 1),
                      std::to_string(hist.binValue(i))});
    }
    return table.renderCsv();
}

std::string counterCsv(const sim::FreqCounter& counter, const char* keyName) {
    TextTable table{{keyName, "count", "fraction"}};
    for (const auto& [key, count] : counter.entries()) {
        table.addRow({std::to_string(key), std::to_string(count),
                      TextTable::num(counter.fraction(key), 4)});
    }
    return table.renderCsv();
}

TextTable crashFamilyTable(const FieldStudyResults& results) {
    TextTable table{{"family", "category", "type", "dumps", "share_percent",
                     "mtbf_hours", "phones", "distinct_signatures", "top_app",
                     "frames"}};
    for (const auto& row : results.crashFamilies.rows) {
        std::string frames;
        for (std::size_t i = 0; i < row.frames.size(); ++i) {
            if (i != 0) frames += ';';
            frames += row.frames[i];
        }
        table.addRow({row.familyId,
                      std::string{symbos::toString(row.panic.category)},
                      std::to_string(row.panic.type), std::to_string(row.dumps),
                      TextTable::num(row.sharePct), TextTable::num(row.mtbfHours, 1),
                      std::to_string(row.phones),
                      std::to_string(row.distinctSignatures), row.topApp, frames});
    }
    return table;
}

}  // namespace

std::vector<std::string> exportFieldCsv(const FieldStudyResults& results,
                                        const std::string& directory) {
    const std::filesystem::path dir{directory};
    std::filesystem::create_directories(dir);
    std::vector<std::string> written;

    // Table 2.
    {
        TextTable table{{"category", "type", "count", "measured_percent",
                         "paper_percent"}};
        for (const auto& row : results.table2) {
            table.addRow({std::string{symbos::toString(row.panic.category)},
                          std::to_string(row.panic.type), std::to_string(row.count),
                          TextTable::num(row.percent), TextTable::num(row.paperPercent)});
        }
        writeFile(dir / "table2_panics.csv", table.renderCsv(), written);
    }
    // Figure 2 histograms.
    writeFile(dir / "fig2_reboot_durations_full.csv",
              histogramCsv(analysis::ShutdownDiscriminator::rebootDurationHistogram(
                  results.dataset, 40'000.0, 40)),
              written);
    writeFile(dir / "fig2_reboot_durations_zoom.csv",
              histogramCsv(analysis::ShutdownDiscriminator::rebootDurationHistogram(
                  results.dataset, 500.0, 25)),
              written);
    // Figure 3.
    writeFile(dir / "fig3_burst_lengths.csv",
              counterCsv(results.fig3BurstLengths, "burst_length"), written);
    // Figure 5.
    {
        TextTable table{{"category", "panics", "to_freeze", "to_self_shutdown",
                         "isolated"}};
        for (const auto& row : results.fig5Coalescence.byCategory) {
            table.addRow({std::string{symbos::toString(row.category)},
                          std::to_string(row.total), std::to_string(row.toFreeze),
                          std::to_string(row.toSelfShutdown),
                          std::to_string(row.isolated())});
        }
        writeFile(dir / "fig5_coalescence.csv", table.renderCsv(), written);
    }
    // Table 3.
    {
        TextTable table{{"category", "voice_call", "message", "unspecified"}};
        for (const auto& row : results.table3.rows) {
            table.addRow({std::string{symbos::toString(row.category)},
                          std::to_string(row.voiceCall), std::to_string(row.message),
                          std::to_string(row.unspecified)});
        }
        writeFile(dir / "table3_activity.csv", table.renderCsv(), written);
    }
    // Figure 6.
    writeFile(dir / "fig6_running_apps.csv",
              counterCsv(results.fig6AppCounts, "apps_at_panic"), written);
    // Table 4.
    {
        TextTable table{{"category", "hl_outcome", "application", "count",
                         "percent_of_all_panics"}};
        for (const auto& row : results.table4) {
            const char* outcome = row.relation == analysis::PanicRelation::Freeze
                                      ? "freeze"
                                  : row.relation == analysis::PanicRelation::SelfShutdown
                                      ? "self-shutdown"
                                      : "none";
            table.addRow({std::string{symbos::toString(row.category)}, outcome,
                          row.app, std::to_string(row.count),
                          TextTable::num(row.percentOfAllPanics)});
        }
        writeFile(dir / "table4_apps.csv", table.renderCsv(), written);
    }
    // Crash families.
    writeFile(dir / "crash_families.csv", crashFamilyTable(results).renderCsv(),
              written);
    // Headline + evaluation.
    {
        TextTable table{{"metric", "measured", "paper"}};
        const auto& mtbf = results.mtbf;
        table.addRow({"observed_phone_hours", TextTable::num(mtbf.observedPhoneHours, 0),
                      "112680"});
        table.addRow({"freezes", std::to_string(mtbf.freezeCount), "360"});
        table.addRow({"self_shutdowns", std::to_string(mtbf.selfShutdownCount), "471"});
        table.addRow({"mtbf_freeze_hours", TextTable::num(mtbf.mtbfFreezeHours, 1),
                      "313"});
        table.addRow({"mtbf_self_shutdown_hours",
                      TextTable::num(mtbf.mtbfSelfShutdownHours, 1), "250"});
        const auto& eval = results.evaluation;
        table.addRow({"freeze_detection_precision",
                      TextTable::num(eval.freezeDetection.precision(), 4), ""});
        table.addRow({"freeze_detection_recall",
                      TextTable::num(eval.freezeDetection.recall(), 4), ""});
        table.addRow({"self_shutdown_precision",
                      TextTable::num(eval.selfShutdownDetection.precision(), 4), ""});
        table.addRow({"self_shutdown_recall",
                      TextTable::num(eval.selfShutdownDetection.recall(), 4), ""});
        table.addRow({"panic_capture_rate",
                      TextTable::num(eval.panicCaptureRate(), 4), ""});
        writeFile(dir / "headline.csv", table.renderCsv(), written);
    }
    return written;
}

std::vector<std::string> exportForumCsv(const forum::ForumStudyResult& result,
                                        const std::string& directory) {
    const std::filesystem::path dir{directory};
    std::filesystem::create_directories(dir);
    std::vector<std::string> written;

    using namespace symfail::forum;
    TextTable table{{"failure_type", "recovery", "measured_percent", "paper_percent"}};
    for (const auto& cell : paperTable1()) {
        table.addRow({std::string{toString(cell.type)},
                      std::string{toString(cell.recovery)},
                      TextTable::num(result.percent(cell.type, cell.recovery)),
                      TextTable::num(cell.percent)});
    }
    writeFile(dir / "table1_forum.csv", table.renderCsv(), written);

    TextTable summary{{"metric", "value"}};
    summary.addRow({"classified_failures", std::to_string(result.classifiedFailures)});
    summary.addRow({"corpus_size", std::to_string(result.corpusSize)});
    summary.addRow({"smart_phone_share", TextTable::num(result.smartPhoneShare, 4)});
    summary.addRow({"filter_precision", TextTable::num(result.filterPrecision, 4)});
    summary.addRow({"filter_recall", TextTable::num(result.filterRecall, 4)});
    summary.addRow({"type_accuracy", TextTable::num(result.typeAccuracy, 4)});
    summary.addRow({"recovery_accuracy", TextTable::num(result.recoveryAccuracy, 4)});
    writeFile(dir / "forum_summary.csv", summary.renderCsv(), written);
    return written;
}

namespace {

/// Minimal JSON building: escaped strings, arrays and objects assembled
/// by hand (the output schema is fixed, a JSON library would be overkill).
std::string jsonEscape(std::string_view s) {
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(c));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
    return out;
}

std::string jsonNum(double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    return buf;
}

std::string crashFamiliesJsonObject(const FieldStudyResults& results) {
    std::string json = "{\"total_dumps\": " +
                       std::to_string(results.crashFamilies.totalDumps) +
                       ", \"families\": [";
    for (std::size_t i = 0; i < results.crashFamilies.rows.size(); ++i) {
        const auto& row = results.crashFamilies.rows[i];
        if (i != 0) json += ", ";
        json += "{\"id\": " + jsonEscape(row.familyId) +
                ", \"panic\": " + jsonEscape(symbos::toString(row.panic)) +
                ", \"dumps\": " + std::to_string(row.dumps) +
                ", \"share_percent\": " + jsonNum(row.sharePct) +
                ", \"mtbf_hours\": " + jsonNum(row.mtbfHours) +
                ", \"phones\": " + std::to_string(row.phones) +
                ", \"distinct_signatures\": " + std::to_string(row.distinctSignatures) +
                ", \"top_app\": " + jsonEscape(row.topApp) + ", \"frames\": [";
        for (std::size_t f = 0; f < row.frames.size(); ++f) {
            if (f != 0) json += ", ";
            json += jsonEscape(row.frames[f]);
        }
        json += "]}";
    }
    json += "]}";
    return json;
}

}  // namespace

std::string fieldResultsToJson(const FieldStudyResults& results) {
    std::string json = "{\n";

    // Headline.
    const auto& mtbf = results.mtbf;
    json += "  \"headline\": {";
    json += "\"observed_phone_hours\": " + jsonNum(mtbf.observedPhoneHours);
    json += ", \"freezes\": " + std::to_string(mtbf.freezeCount);
    json += ", \"self_shutdowns\": " + std::to_string(mtbf.selfShutdownCount);
    json += ", \"mtbf_freeze_hours\": " + jsonNum(mtbf.mtbfFreezeHours);
    json += ", \"mtbf_self_shutdown_hours\": " + jsonNum(mtbf.mtbfSelfShutdownHours);
    json += "},\n";

    // Table 2.
    json += "  \"table2\": [";
    for (std::size_t i = 0; i < results.table2.size(); ++i) {
        const auto& row = results.table2[i];
        if (i != 0) json += ", ";
        json += "{\"panic\": " + jsonEscape(symbos::toString(row.panic)) +
                ", \"count\": " + std::to_string(row.count) +
                ", \"percent\": " + jsonNum(row.percent) +
                ", \"paper_percent\": " + jsonNum(row.paperPercent) + "}";
    }
    json += "],\n";

    // Figure 3.
    json += "  \"fig3_burst_lengths\": {";
    bool first = true;
    for (const auto& [len, count] : results.fig3BurstLengths.entries()) {
        if (!first) json += ", ";
        first = false;
        json += jsonEscape(std::to_string(len)) + ": " + std::to_string(count);
    }
    json += "},\n";

    // Figure 5.
    const auto& coal = results.fig5Coalescence;
    json += "  \"fig5\": {\"related_fraction\": " + jsonNum(coal.relatedFraction()) +
            ", \"by_category\": [";
    for (std::size_t i = 0; i < coal.byCategory.size(); ++i) {
        const auto& row = coal.byCategory[i];
        if (i != 0) json += ", ";
        json += "{\"category\": " + jsonEscape(symbos::toString(row.category)) +
                ", \"total\": " + std::to_string(row.total) +
                ", \"to_freeze\": " + std::to_string(row.toFreeze) +
                ", \"to_self_shutdown\": " + std::to_string(row.toSelfShutdown) + "}";
    }
    json += "]},\n";

    // Table 3.
    json += "  \"table3\": {\"voice_percent\": " + jsonNum(results.table3.voicePercent) +
            ", \"message_percent\": " + jsonNum(results.table3.messagePercent) +
            ", \"unspecified_percent\": " + jsonNum(results.table3.unspecifiedPercent) +
            "},\n";

    // Figure 6.
    json += "  \"fig6_running_apps\": {";
    first = true;
    for (const auto& [n, count] : results.fig6AppCounts.entries()) {
        if (!first) json += ", ";
        first = false;
        json += jsonEscape(std::to_string(n)) + ": " + std::to_string(count);
    }
    json += "},\n";

    // Table 4 (top rows).
    json += "  \"table4\": [";
    for (std::size_t i = 0; i < results.table4.size(); ++i) {
        const auto& row = results.table4[i];
        if (i != 0) json += ", ";
        const char* outcome = row.relation == analysis::PanicRelation::Freeze
                                  ? "freeze"
                              : row.relation == analysis::PanicRelation::SelfShutdown
                                  ? "self-shutdown"
                                  : "none";
        json += "{\"category\": " + jsonEscape(symbos::toString(row.category)) +
                ", \"outcome\": " + jsonEscape(outcome) +
                ", \"app\": " + jsonEscape(row.app) +
                ", \"percent\": " + jsonNum(row.percentOfAllPanics) + "}";
    }
    json += "],\n";

    // Crash families.
    json += "  \"crash_families\": " + crashFamiliesJsonObject(results) + ",\n";

    // Evaluation.
    const auto& eval = results.evaluation;
    json += "  \"evaluation\": {";
    json += "\"freeze_precision\": " + jsonNum(eval.freezeDetection.precision());
    json += ", \"freeze_recall\": " + jsonNum(eval.freezeDetection.recall());
    json += ", \"self_shutdown_precision\": " +
            jsonNum(eval.selfShutdownDetection.precision());
    json += ", \"self_shutdown_recall\": " +
            jsonNum(eval.selfShutdownDetection.recall());
    json += ", \"panic_capture_rate\": " + jsonNum(eval.panicCaptureRate());
    json += ", \"output_failure_capture_rate\": " +
            jsonNum(eval.outputFailureCaptureRate());
    json += "}\n}\n";
    return json;
}

void exportFieldJson(const FieldStudyResults& results, const std::string& path) {
    std::ofstream out{path};
    if (!out) {
        throw std::runtime_error("cannot write " + path);
    }
    out << fieldResultsToJson(results);
}

std::string crashFamiliesToJson(const FieldStudyResults& results) {
    return crashFamiliesJsonObject(results) + "\n";
}

void exportCrashJson(const FieldStudyResults& results, const std::string& path) {
    std::ofstream out{path};
    if (!out) {
        throw std::runtime_error("cannot write " + path);
    }
    out << crashFamiliesToJson(results);
}

std::vector<std::string> exportCrashCsv(const FieldStudyResults& results,
                                        const std::string& directory) {
    const std::filesystem::path dir{directory};
    std::filesystem::create_directories(dir);
    std::vector<std::string> written;
    writeFile(dir / "crash_families.csv", crashFamilyTable(results).renderCsv(),
              written);
    return written;
}

}  // namespace symfail::core
