// Capacity self-observability: the `symfail perf` scaling report.
//
// ROADMAP item 1 asks how far the campaign scales beyond the paper's 25
// phones.  This module answers with measurements instead of guesses: it
// runs the same campaign at a ladder of fleet sizes with a
// ResourceAccountant and a sampling CampaignProfiler attached, and
// reports throughput (phone-hours simulated per wall-clock second),
// footprint (bytes per phone, split per subsystem) and host peak RSS for
// every rung.
//
// Each cell's report is split in two:
//   - the *accounting* section derives only from simulated state
//     (subsystem byte probes, queue-depth peak, event counts, expected
//     phone-hours) and is byte-identical across runs at a fixed seed;
//   - the *host* section (wall seconds, phone-hours/sec, peak RSS,
//     hotspot estimates) measures this machine and is not.
// Consumers that diff reports — the determinism test, the CI smoke run —
// compare accounting sections only.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"
#include "obs/accountant.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace symfail::core {

/// Configuration of one scaling run.
struct PerfOptions {
    /// Fleet sizes to ladder through, one campaign per entry.
    std::vector<int> fleetSizes{25, 10'000};
    /// Campaign length per cell (short: throughput and bytes/phone
    /// stabilize within days, not months).
    long long days = 2;
    std::uint64_t seed = 2007;
    /// Simulated-clock cadence of the accounting sweep.
    long long sampleHours = 6;
    /// Profiler sampling stride (1 = time every dispatch).
    std::uint64_t samplingStride = 64;
    /// Template campaign configuration (transport, rates, …); phone
    /// count, length and seed are overwritten per cell.
    fleet::FleetConfig base{};
};

/// One rung of the scaling ladder.
struct PerfCell {
    int phones{0};
    long long days{0};

    // -- accounting section: deterministic at a fixed seed --------------
    std::vector<obs::ResourceAccountant::Account> accounts;
    std::uint64_t totalBytes{0};      ///< Final-sweep sum across subsystems.
    std::uint64_t peakTotalBytes{0};  ///< Largest swept sum.
    double bytesPerPhone{0.0};        ///< peakTotalBytes / phones.
    std::uint64_t accountingSamples{0};
    std::size_t queueDepthPeak{0};
    std::uint64_t simulatorEvents{0};
    double phoneHours{0.0};  ///< Expected observed phone-hours (enrollment-aware).

    // -- host section: measures this machine, not the simulation --------
    double wallSeconds{0.0};
    double phoneHoursPerSec{0.0};
    std::uint64_t peakRssBytes{0};
    std::vector<obs::CampaignProfiler::CategoryProfile> hotspots;
    std::vector<obs::CampaignProfiler::PhaseProfile> phases;
};

/// The whole ladder.
struct PerfReport {
    std::vector<PerfCell> cells;
    std::uint64_t seed{0};
    long long sampleHours{0};
    std::uint64_t samplingStride{0};
};

/// Runs one campaign per fleet size and measures it.  Deterministic in
/// the accounting sections for a given options value.
[[nodiscard]] PerfReport runPerfScaling(const PerfOptions& options);

/// Human-readable scaling report (one block per cell: throughput,
/// footprint ledger, hotspot table).
[[nodiscard]] std::string renderPerfText(const PerfReport& report);

/// JSON document; every cell carries the accounting/host split described
/// above, so `python -c "json.load(...)['cells'][i]['accounting']"` is a
/// stable fingerprint.
[[nodiscard]] std::string perfToJson(const PerfReport& report);

/// Writes perf_scaling.csv (one row per cell x subsystem plus a "total"
/// row carrying the host columns) into `directory`, created if missing.
/// Returns the paths written.  Throws std::runtime_error on I/O failure.
std::vector<std::string> exportPerfCsv(const PerfReport& report,
                                       const std::string& directory);

/// Publishes per-cell gauges under the "perf" subsystem, labeled by
/// fleet size (perf.bytes_per_phone{phones="25"}, …).
void publishPerfMetrics(const PerfReport& report, obs::MetricsRegistry& registry);

}  // namespace symfail::core
