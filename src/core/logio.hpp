// Disk persistence for collected Log Files.
//
// A campaign's logs can be saved one file per phone (`<phone>.log`) and
// re-analyzed later — the workflow of a real deployment, where collection
// and analysis are separate steps (and separate machines).
#pragma once

#include <string>
#include <vector>

#include "analysis/dataset.hpp"

namespace symfail::core {

/// Writes each phone's Log File as `<directory>/<phoneName>.log`; the
/// directory is created if missing.  Returns the paths written.  Throws
/// std::runtime_error on I/O failure.
std::vector<std::string> saveLogs(const std::vector<analysis::PhoneLog>& logs,
                                  const std::string& directory);

/// Loads every `*.log` file in `directory` (the phone name is the file
/// stem).  Throws std::runtime_error if the directory cannot be read.
[[nodiscard]] std::vector<analysis::PhoneLog> loadLogs(const std::string& directory);

}  // namespace symfail::core
