// Ground-truth evaluation of the measurement methodology.
//
// The original field study had no oracle: nobody could say how many
// freezes the heartbeat missed or how many "self-shutdowns" were really
// impatient users.  The simulation knows.  This evaluator scores the
// logger + analysis pipeline against the simulator's ground truth:
//   * freeze detection precision/recall,
//   * self-shutdown discrimination precision/recall (against the true
//     kernel-initiated reboots),
//   * panic capture rate (panics logged vs injected).
#pragma once

#include <map>
#include <string>

#include "analysis/dataset.hpp"
#include "analysis/discriminator.hpp"
#include "phone/ground_truth.hpp"

namespace symfail::analysis {

/// Precision/recall pair.
struct DetectionScore {
    std::size_t truePositives{0};
    std::size_t falsePositives{0};
    std::size_t falseNegatives{0};
    [[nodiscard]] double precision() const {
        const auto d = truePositives + falsePositives;
        return d == 0 ? 1.0 : static_cast<double>(truePositives) / static_cast<double>(d);
    }
    [[nodiscard]] double recall() const {
        const auto d = truePositives + falseNegatives;
        return d == 0 ? 1.0 : static_cast<double>(truePositives) / static_cast<double>(d);
    }
    [[nodiscard]] double f1() const {
        const double p = precision();
        const double r = recall();
        return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
    }
};

/// Full evaluation result.
struct EvaluationReport {
    DetectionScore freezeDetection;
    DetectionScore selfShutdownDetection;
    std::size_t panicsInjected{0};
    std::size_t panicsLogged{0};
    [[nodiscard]] double panicCaptureRate() const {
        return panicsInjected == 0
                   ? 1.0
                   : static_cast<double>(panicsLogged) /
                         static_cast<double>(panicsInjected);
    }
    /// Output-failure capture via the user-report channel (the paper's
    /// future-work extension): reports filed vs failures that occurred —
    /// quantifies the under-reporting bias the paper warned about.
    std::size_t outputFailuresInjected{0};
    std::size_t userReportsLogged{0};
    [[nodiscard]] double outputFailureCaptureRate() const {
        return outputFailuresInjected == 0
                   ? 1.0
                   : static_cast<double>(userReportsLogged) /
                         static_cast<double>(outputFailuresInjected);
    }
};

/// Ground truth per phone (keyed by phone name).
using TruthMap = std::map<std::string, const phone::GroundTruth*>;

/// Scores detections against ground truth.  A detection matches a truth
/// event when their timestamps fall within `toleranceSeconds`.
[[nodiscard]] EvaluationReport evaluate(const LogDataset& dataset,
                                        const ShutdownClassification& classification,
                                        const TruthMap& truth,
                                        double toleranceSeconds = 900.0);

}  // namespace symfail::analysis
