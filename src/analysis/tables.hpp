// Plain-text table rendering for benches and examples.
#pragma once

#include <string>
#include <vector>

namespace symfail::analysis {

/// Minimal fixed-width table builder with left-aligned first column and
/// right-aligned numeric columns.
class TextTable {
public:
    explicit TextTable(std::vector<std::string> header);

    void addRow(std::vector<std::string> cells);
    /// Adds a horizontal rule before the next row.
    void addRule();

    [[nodiscard]] std::string render() const;
    /// Comma-separated export (quotes cells containing commas).
    [[nodiscard]] std::string renderCsv() const;

    /// Formats a double with the given precision.
    [[nodiscard]] static std::string num(double value, int precision = 2);

private:
    struct Row {
        std::vector<std::string> cells;
        bool rule{false};
    };
    std::vector<std::string> header_;
    std::vector<Row> rows_;
};

}  // namespace symfail::analysis
