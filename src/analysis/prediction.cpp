#include "analysis/prediction.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace symfail::analysis {

std::vector<WarningPoint> panicWarningAnalysis(
    const LogDataset& dataset, const ShutdownClassification& classification,
    const std::vector<double>& horizonsSeconds, double toleranceSeconds) {
    // Per-phone sorted HL event instants (seconds).
    std::map<std::string, std::vector<double>> hlByPhone;
    for (const auto& freeze : dataset.freezes()) {
        hlByPhone[freeze.phoneName].push_back(freeze.lastAliveAt.asSecondsF());
    }
    for (const auto& self : classification.selfShutdowns) {
        hlByPhone[self.phoneName].push_back(self.shutdownAt.asSecondsF());
    }
    std::size_t hlTotal = 0;
    for (auto& [phone, times] : hlByPhone) {
        std::sort(times.begin(), times.end());
        hlTotal += times.size();
    }

    const double observedSeconds = dataset.totalObservedTime().asSecondsF();
    const double lambda =
        observedSeconds > 0.0 ? static_cast<double>(hlTotal) / observedSeconds : 0.0;

    std::vector<WarningPoint> out;
    out.reserve(horizonsSeconds.size());
    for (const double horizon : horizonsSeconds) {
        WarningPoint point;
        point.horizonSeconds = horizon;
        point.baseRate = 1.0 - std::exp(-lambda * horizon);
        std::size_t followed = 0;
        for (const auto& panic : dataset.panics()) {
            ++point.panics;
            const auto it = hlByPhone.find(panic.phoneName);
            if (it == hlByPhone.end()) continue;
            const double t = panic.record.time.asSecondsF();
            // First HL event after (t - tolerance); the tolerance absorbs
            // the heartbeat-granularity skew of detected freeze instants.
            const auto next = std::upper_bound(it->second.begin(), it->second.end(),
                                               t - toleranceSeconds);
            if (next != it->second.end() && *next - t <= horizon) ++followed;
        }
        if (point.panics > 0) {
            point.pFailureAfterPanic =
                static_cast<double>(followed) / static_cast<double>(point.panics);
        }
        out.push_back(point);
    }
    return out;
}

}  // namespace symfail::analysis
