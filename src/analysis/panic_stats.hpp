// Panic classification (Table 2) and burst analysis (Figure 3).
#pragma once

#include <vector>

#include "analysis/dataset.hpp"
#include "simkernel/histogram.hpp"
#include "symbos/panic.hpp"

namespace symfail::analysis {

/// One row of the regenerated Table 2.
struct PanicTableRow {
    symbos::PanicId panic;
    std::size_t count{0};
    double percent{0.0};       ///< measured share of all panics
    double paperPercent{0.0};  ///< the paper's share, for side-by-side output
};

/// Regenerates Table 2 from the recorded panics.  Rows follow the paper's
/// order; panics outside the paper's twenty classes (if any) are appended.
[[nodiscard]] std::vector<PanicTableRow> panicTable(const LogDataset& dataset);

/// Share of panics in a category (e.g. all E32USER-CBase rows — the heap
/// management share the abstract quotes as 18%).
[[nodiscard]] double categoryShare(const LogDataset& dataset,
                                   symbos::PanicCategory category);

/// Figure 3: groups each phone's panics into bursts (inter-panic gap at
/// most `gapSeconds`) and returns the burst-length frequency counter.
[[nodiscard]] sim::FreqCounter burstLengths(const LogDataset& dataset,
                                            double gapSeconds = 300.0);

/// Fraction of bursts with length >= 2 (the paper reports ~25%).
[[nodiscard]] double burstFraction(const sim::FreqCounter& lengths);

}  // namespace symfail::analysis
