#include "analysis/panic_stats.hpp"

#include <algorithm>
#include <map>

namespace symfail::analysis {

std::vector<PanicTableRow> panicTable(const LogDataset& dataset) {
    std::map<symbos::PanicId, std::size_t> counts;
    for (const auto& p : dataset.panics()) ++counts[p.record.panic];
    const double total = static_cast<double>(dataset.panics().size());

    std::vector<PanicTableRow> rows;
    for (const auto& paperRow : symbos::paperPanicTable()) {
        PanicTableRow row;
        row.panic = paperRow.id;
        row.paperPercent = paperRow.paperPercent;
        const auto it = counts.find(paperRow.id);
        if (it != counts.end()) {
            row.count = it->second;
            counts.erase(it);
        }
        row.percent = total > 0.0 ? 100.0 * static_cast<double>(row.count) / total : 0.0;
        rows.push_back(row);
    }
    // Anything not in the paper's table (unexpected in practice).
    for (const auto& [id, count] : counts) {
        PanicTableRow row;
        row.panic = id;
        row.count = count;
        row.percent = total > 0.0 ? 100.0 * static_cast<double>(count) / total : 0.0;
        rows.push_back(row);
    }
    return rows;
}

double categoryShare(const LogDataset& dataset, symbos::PanicCategory category) {
    if (dataset.panics().empty()) return 0.0;
    std::size_t n = 0;
    for (const auto& p : dataset.panics()) {
        if (p.record.panic.category == category) ++n;
    }
    return 100.0 * static_cast<double>(n) /
           static_cast<double>(dataset.panics().size());
}

sim::FreqCounter burstLengths(const LogDataset& dataset, double gapSeconds) {
    // Group per phone, in time order.
    std::map<std::string, std::vector<sim::TimePoint>> perPhone;
    for (const auto& p : dataset.panics()) {
        perPhone[p.phoneName].push_back(p.record.time);
    }
    sim::FreqCounter lengths;
    for (auto& [phone, times] : perPhone) {
        std::sort(times.begin(), times.end());
        std::size_t burst = 0;
        sim::TimePoint prev{};
        for (const auto& t : times) {
            if (burst == 0 || (t - prev).asSecondsF() <= gapSeconds) {
                ++burst;
            } else {
                lengths.add(static_cast<std::int64_t>(burst));
                burst = 1;
            }
            prev = t;
        }
        if (burst > 0) lengths.add(static_cast<std::int64_t>(burst));
    }
    return lengths;
}

double burstFraction(const sim::FreqCounter& lengths) {
    if (lengths.total() == 0) return 0.0;
    std::uint64_t multi = 0;
    for (const auto& [len, count] : lengths.entries()) {
        if (len >= 2) multi += count;
    }
    return static_cast<double>(multi) / static_cast<double>(lengths.total());
}

}  // namespace symfail::analysis
