// MTBF estimation (Section 6).
//
// The paper reports the Mean Time Between Freezes (MTBFr) and Mean Time
// Between Self-shutdowns (MTBS) in wall-clock hours, averaged per phone:
// MTBFr ≈ 313 h, MTBS ≈ 250 h — a user-perceived failure roughly every
// 11 days.
#pragma once

#include <string>
#include <vector>

#include "analysis/dataset.hpp"
#include "analysis/discriminator.hpp"

namespace symfail::analysis {

/// MTBF estimates for a campaign.
struct MtbfReport {
    double mtbfFreezeHours{0.0};        ///< MTBFr
    double mtbfSelfShutdownHours{0.0};  ///< MTBS
    double mtbfAnyFailureHours{0.0};    ///< freezes + self-shutdowns combined
    std::size_t freezeCount{0};
    std::size_t selfShutdownCount{0};
    double observedPhoneHours{0.0};
    /// Combined failure inter-arrival expressed in days ("a failure every
    /// N days"); 0 when no failures were observed.
    [[nodiscard]] double failureEveryDays() const {
        return mtbfAnyFailureHours / 24.0;
    }
};

/// Per-phone breakdown row.
struct PhoneMtbfRow {
    std::string phoneName;
    double observedHours{0.0};
    std::size_t freezes{0};
    std::size_t selfShutdowns{0};
};

/// Computes campaign MTBF figures from the dataset and a shutdown
/// classification.
[[nodiscard]] MtbfReport estimateMtbf(const LogDataset& dataset,
                                      const ShutdownClassification& classification);

/// Per-phone breakdown (for dispersion reporting).
[[nodiscard]] std::vector<PhoneMtbfRow> perPhoneMtbf(
    const LogDataset& dataset, const ShutdownClassification& classification);

}  // namespace symfail::analysis
