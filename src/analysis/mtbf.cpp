#include "analysis/mtbf.hpp"

#include <map>

namespace symfail::analysis {

MtbfReport estimateMtbf(const LogDataset& dataset,
                        const ShutdownClassification& classification) {
    MtbfReport report;
    report.freezeCount = dataset.freezes().size();
    report.selfShutdownCount = classification.selfShutdowns.size();
    report.observedPhoneHours = dataset.totalObservedTime().asHoursF();
    if (report.freezeCount > 0) {
        report.mtbfFreezeHours =
            report.observedPhoneHours / static_cast<double>(report.freezeCount);
    }
    if (report.selfShutdownCount > 0) {
        report.mtbfSelfShutdownHours =
            report.observedPhoneHours / static_cast<double>(report.selfShutdownCount);
    }
    const auto anyCount = report.freezeCount + report.selfShutdownCount;
    if (anyCount > 0) {
        report.mtbfAnyFailureHours =
            report.observedPhoneHours / static_cast<double>(anyCount);
    }
    return report;
}

std::vector<PhoneMtbfRow> perPhoneMtbf(const LogDataset& dataset,
                                       const ShutdownClassification& classification) {
    std::map<std::string, PhoneMtbfRow> rows;
    for (const auto& span : dataset.spans()) {
        PhoneMtbfRow row;
        row.phoneName = span.phoneName;
        row.observedHours = span.span().asHoursF();
        rows.emplace(span.phoneName, row);
    }
    for (const auto& freeze : dataset.freezes()) {
        const auto it = rows.find(freeze.phoneName);
        if (it != rows.end()) ++it->second.freezes;
    }
    for (const auto& self : classification.selfShutdowns) {
        const auto it = rows.find(self.phoneName);
        if (it != rows.end()) ++it->second.selfShutdowns;
    }
    std::vector<PhoneMtbfRow> out;
    out.reserve(rows.size());
    for (auto& [name, row] : rows) out.push_back(std::move(row));
    return out;
}

}  // namespace symfail::analysis
