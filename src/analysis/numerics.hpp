// Shared deterministic MLE numerics.
//
// Two fitting codepaths need the same machinery: the TBF Weibull fit in
// analysis/reliability.cpp and the NHPP solvers in src/srgm/.  Both
// maximize a one-dimensional profile log-likelihood whose derivative is
// awkward but whose value is cheap, and both accumulate long sums of logs
// where naive summation loses digits on 10k+ samples.  This header holds
// the one copy of each: a bracketed golden-section minimizer (derivative
// free, fixed iteration count, bit-reproducible across platforms) and a
// Kahan-compensated accumulator.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>

namespace symfail::analysis {

/// Result of a 1-D minimization.
struct MinimizeResult {
    double x{0.0};   ///< Argmin within the bracket.
    double fx{0.0};  ///< Function value at x.
};

/// Golden-section search for the minimum of `f` on [lo, hi].
///
/// Derivative-free and unconditionally convergent on a unimodal bracket:
/// the interval shrinks by the golden ratio each step, so `iters` = 90
/// narrows any bracket by ~1e-18 relative — below double resolution —
/// with a fixed, platform-independent evaluation sequence (no tolerance
/// test whose rounding could differ across libms).  On a multimodal
/// function it converges to *a* local minimum inside the bracket, which
/// is why callers optimize smooth profile likelihoods in log-space.
template <typename Fn>
[[nodiscard]] MinimizeResult goldenSectionMinimize(double lo, double hi, Fn&& f,
                                                   int iters = 90) {
    // invphi = 1/phi, invphi2 = 1/phi^2
    constexpr double invphi = 0.6180339887498949;
    constexpr double invphi2 = 0.3819660112501051;
    double a = lo;
    double b = hi;
    double x1 = a + invphi2 * (b - a);
    double x2 = a + invphi * (b - a);
    double f1 = f(x1);
    double f2 = f(x2);
    for (int i = 0; i < iters; ++i) {
        if (f1 < f2) {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = a + invphi2 * (b - a);
            f1 = f(x1);
        } else {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + invphi * (b - a);
            f2 = f(x2);
        }
    }
    return f1 < f2 ? MinimizeResult{x1, f1} : MinimizeResult{x2, f2};
}

/// Kahan-compensated running sum for log-likelihood accumulation.
///
/// Summing 10k+ log terms of mixed magnitude naively drifts by enough to
/// perturb AIC margins near the decision boundary; compensated summation
/// keeps the error at one ulp of the total independent of length.
class KahanSum {
public:
    void add(double value) {
        const double y = value - compensation_;
        const double t = sum_ + y;
        compensation_ = (t - sum_) - y;
        sum_ = t;
    }
    [[nodiscard]] double value() const { return sum_; }

private:
    double sum_{0.0};
    double compensation_{0.0};
};

/// Compensated sum of log(x) over a sample (zeros clamped to `floor`,
/// since measured durations can quantize to zero but log cannot).
[[nodiscard]] inline double sumLog(std::span<const double> xs,
                                   double floor = 1e-12) {
    KahanSum sum;
    for (const double x : xs) sum.add(std::log(x > floor ? x : floor));
    return sum.value();
}

}  // namespace symfail::analysis
