// Running-application analysis (Figure 6 and Table 4).
//
// Figure 6: the distribution of the number of running applications at
// panic time (the paper finds the mode at one — concurrency does not
// drive panics).  Table 4: which applications are present when each panic
// category strikes, split by the HL outcome of the panic.
#pragma once

#include <string>
#include <vector>

#include "analysis/coalescence.hpp"
#include "analysis/dataset.hpp"
#include "simkernel/histogram.hpp"

namespace symfail::analysis {

/// Figure 6: frequency of running-application counts at panic time.
[[nodiscard]] sim::FreqCounter runningAppCounts(const LogDataset& dataset);

/// One Table 4 cell aggregate: how often `app` was running when a panic of
/// `category` with HL outcome `relation` occurred, as a percentage of all
/// panics.
struct AppCorrelationRow {
    symbos::PanicCategory category{};
    PanicRelation relation{PanicRelation::Isolated};
    std::string app;
    std::size_t count{0};
    double percentOfAllPanics{0.0};
};

/// Table 4, flattened to (category, outcome, app) rows, sorted by
/// descending percentage.  Rows below `minPercent` are dropped (the paper
/// also reports only the significant cells, covering ~53% of panics).
[[nodiscard]] std::vector<AppCorrelationRow> appCorrelation(
    const CoalescenceResult& result, double minPercent = 0.2);

/// Per-application totals across all categories (Table 4's "Total" row).
struct AppTotalRow {
    std::string app;
    std::size_t count{0};
    double percentOfAllPanics{0.0};
};
[[nodiscard]] std::vector<AppTotalRow> appTotals(const LogDataset& dataset);

}  // namespace symfail::analysis
