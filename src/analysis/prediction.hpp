// Panic-as-early-warning analysis.
//
// Measurement studies like the paper's exist "to guide development of
// detection and recovery mechanisms".  A concrete question the collected
// data can answer: when a panic is recorded, how much more likely is a
// user-perceived failure (freeze or self-shutdown) within the next T
// seconds than at a random moment?  A large lift at useful horizons means
// panics are actionable early warnings (e.g. checkpoint state now).
#pragma once

#include <vector>

#include "analysis/dataset.hpp"
#include "analysis/discriminator.hpp"

namespace symfail::analysis {

/// Predictive value of a panic at one horizon.
struct WarningPoint {
    double horizonSeconds{0.0};
    /// P(HL event within (0, T] after a panic), over all panics.
    double pFailureAfterPanic{0.0};
    /// P(HL event within T after a uniformly random instant):
    /// 1 - exp(-lambda T) with lambda the campaign's HL-event rate.
    double baseRate{0.0};
    std::size_t panics{0};
    /// How many times likelier a failure is after a panic than at random.
    [[nodiscard]] double lift() const {
        return baseRate <= 0.0 ? 0.0 : pFailureAfterPanic / baseRate;
    }
};

/// Sweeps warning horizons.  HL events are freezes plus classified
/// self-shutdowns; everything is per-phone.  `toleranceSeconds` extends
/// the window slightly backwards: a freeze's detected instant is its last
/// ALIVE heartbeat, which precedes the panic that caused it by up to one
/// heartbeat period — without the tolerance, caused failures would not
/// count as "following" their own panic.
[[nodiscard]] std::vector<WarningPoint> panicWarningAnalysis(
    const LogDataset& dataset, const ShutdownClassification& classification,
    const std::vector<double>& horizonsSeconds, double toleranceSeconds = 120.0);

}  // namespace symfail::analysis
