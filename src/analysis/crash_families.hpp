// Crash-family analysis: the server-side view of the structured dumps.
//
// Clusters every dump in the dataset into crash families (crash/cluster.hpp)
// and derives the family-level table the report prints: count, share of
// all dumps, family MTBF over the observed phone-time, per-phone spread
// and the most frequent running application.  This upgrades Table 2 from a
// (category, type) histogram into a clustering workload: one family per
// failure *mechanism*, not per panic code.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/dataset.hpp"
#include "crash/cluster.hpp"

namespace symfail::analysis {

/// One row of the crash-family table (sorted: dumps desc, id asc).
struct CrashFamilyRow {
    std::string familyId;
    symbos::PanicId panic;
    std::size_t dumps{0};
    double sharePct{0.0};     ///< of all dumps in the dataset
    double mtbfHours{0.0};    ///< total observed phone-time / dumps
    std::size_t phones{0};    ///< distinct phones that hit this family
    std::string topApp;       ///< most frequent running app ("" when none)
    std::size_t distinctSignatures{0};
    std::vector<std::string> frames;  ///< representative normalized frames
};

struct CrashFamilyReport {
    std::vector<CrashFamilyRow> rows;
    std::size_t totalDumps{0};
    [[nodiscard]] std::size_t familyCount() const { return rows.size(); }
};

/// Clusters the dataset's dumps.  Deterministic: phones arrive in the
/// dataset's (sorted) order and records in log order, so the same dataset
/// always yields byte-identical rows.
[[nodiscard]] CrashFamilyReport buildCrashFamilyReport(
    const LogDataset& dataset, crash::ClustererConfig config = {});

}  // namespace symfail::analysis
