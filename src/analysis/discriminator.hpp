// Self-shutdown identification (Section 6, Figure 2).
//
// A REBOOT heartbeat marker cannot tell a kernel-initiated reboot from a
// deliberate user power-off — the event is identical.  The paper's
// insight: the *off duration* separates them.  Self-shutdowns restart
// within minutes (median ≈80 s); user shutdowns last much longer (the
// night mode around 30,000 s ≈ 8 h 20 min).  Shutdowns shorter than a
// 360 s threshold are classified as self-shutdowns.
#pragma once

#include <vector>

#include "analysis/dataset.hpp"
#include "simkernel/histogram.hpp"

namespace symfail::analysis {

/// Classification result for the shutdown population.
struct ShutdownClassification {
    std::vector<ShutdownObservation> selfShutdowns;
    std::vector<ShutdownObservation> userShutdowns;
    std::vector<ShutdownObservation> lowBattery;  ///< LOWBT: excluded from both
    /// Median off-duration of the classified self-shutdowns, seconds.
    double selfMedianSeconds{0.0};
    [[nodiscard]] std::size_t totalRebootEvents() const {
        return selfShutdowns.size() + userShutdowns.size();
    }
    [[nodiscard]] double selfFraction() const {
        const auto total = totalRebootEvents();
        return total == 0 ? 0.0
                          : static_cast<double>(selfShutdowns.size()) /
                                static_cast<double>(total);
    }
};

/// The paper's threshold.
inline constexpr double kSelfShutdownThresholdSeconds = 360.0;

/// Discriminates self- from user shutdowns by off-duration.
class ShutdownDiscriminator {
public:
    explicit ShutdownDiscriminator(double thresholdSeconds = kSelfShutdownThresholdSeconds)
        : threshold_{thresholdSeconds} {}

    [[nodiscard]] ShutdownClassification classify(const LogDataset& dataset) const;

    /// Figure 2: the reboot-duration histogram over all REBOOT events.
    /// `maxSeconds` bounds the plotted range (the paper's outer plot runs
    /// to ~40,000 s; the inner zoom to 500 s).
    [[nodiscard]] static sim::Histogram rebootDurationHistogram(
        const LogDataset& dataset, double maxSeconds, std::size_t bins);

    [[nodiscard]] double threshold() const { return threshold_; }

private:
    double threshold_;
};

}  // namespace symfail::analysis
