#include "analysis/crash_families.hpp"

namespace symfail::analysis {

CrashFamilyReport buildCrashFamilyReport(const LogDataset& dataset,
                                         crash::ClustererConfig config) {
    crash::CrashClusterer clusterer{config};
    for (const auto& obs : dataset.dumps()) {
        clusterer.add(obs.phoneName, obs.dump);
    }

    CrashFamilyReport report;
    report.totalDumps = clusterer.totalDumps();
    const double observedHours = dataset.totalObservedTime().asHoursF();
    for (const auto& family : clusterer.families()) {
        CrashFamilyRow row;
        row.familyId = family.id;
        row.panic = family.signature.panic;
        row.dumps = family.dumps;
        row.sharePct = report.totalDumps == 0
                           ? 0.0
                           : 100.0 * static_cast<double>(family.dumps) /
                                 static_cast<double>(report.totalDumps);
        row.mtbfHours = family.dumps == 0
                            ? 0.0
                            : observedHours / static_cast<double>(family.dumps);
        row.phones = family.perPhone.size();
        row.distinctSignatures = family.distinctSignatures;
        // Most frequent running app; ties resolve alphabetically (the map
        // iterates in sorted order).
        std::size_t best = 0;
        for (const auto& [app, count] : family.appCounts) {
            if (count > best) {
                best = count;
                row.topApp = app;
            }
        }
        row.frames = family.signature.frames;
        report.rows.push_back(std::move(row));
    }
    return report;
}

}  // namespace symfail::analysis
