#include "analysis/coalescence.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace symfail::analysis {
namespace {

/// HL events of one phone, time-sorted.
struct HlEvent {
    sim::TimePoint time;
    PanicRelation kind;  ///< Freeze or SelfShutdown
};

std::map<std::string, std::vector<HlEvent>> hlEventsPerPhone(
    const LogDataset& dataset, const ShutdownClassification& classification) {
    std::map<std::string, std::vector<HlEvent>> out;
    for (const auto& freeze : dataset.freezes()) {
        // The freeze happened shortly after the last ALIVE heartbeat.
        out[freeze.phoneName].push_back(HlEvent{freeze.lastAliveAt, PanicRelation::Freeze});
    }
    for (const auto& self : classification.selfShutdowns) {
        out[self.phoneName].push_back(
            HlEvent{self.shutdownAt, PanicRelation::SelfShutdown});
    }
    for (auto& [phone, events] : out) {
        std::sort(events.begin(), events.end(),
                  [](const HlEvent& a, const HlEvent& b) { return a.time < b.time; });
    }
    return out;
}

}  // namespace

CoalescenceResult coalesce(const LogDataset& dataset,
                           const ShutdownClassification& classification,
                           double windowSeconds) {
    CoalescenceResult result;
    const auto hlByPhone = hlEventsPerPhone(dataset, classification);

    std::map<symbos::PanicCategory, CategoryRelationRow> rows;
    std::map<std::string, std::vector<bool>> hlMatched;
    for (const auto& [phone, events] : hlByPhone) {
        hlMatched[phone].assign(events.size(), false);
    }

    for (const auto& panic : dataset.panics()) {
        RelatedPanic related;
        related.panic = panic;
        related.relation = PanicRelation::Isolated;

        const auto it = hlByPhone.find(panic.phoneName);
        if (it != hlByPhone.end()) {
            const auto& events = it->second;
            // Nearest HL event within the window wins.
            double best = windowSeconds;
            std::size_t bestIdx = events.size();
            for (std::size_t i = 0; i < events.size(); ++i) {
                const double gap =
                    std::abs((events[i].time - panic.record.time).asSecondsF());
                if (gap <= best) {
                    best = gap;
                    bestIdx = i;
                }
            }
            if (bestIdx < events.size()) {
                related.relation = events[bestIdx].kind;
                hlMatched[panic.phoneName][bestIdx] = true;
            }
        }

        auto& row = rows[panic.record.panic.category];
        row.category = panic.record.panic.category;
        ++row.total;
        if (related.relation == PanicRelation::Freeze) {
            ++row.toFreeze;
            ++result.relatedCount;
        } else if (related.relation == PanicRelation::SelfShutdown) {
            ++row.toSelfShutdown;
            ++result.relatedCount;
        }
        result.panics.push_back(std::move(related));
    }

    for (const auto& [category, row] : rows) result.byCategory.push_back(row);
    for (const auto& [phone, matched] : hlMatched) {
        result.hlTotal += matched.size();
        result.hlWithPanic += static_cast<std::size_t>(
            std::count(matched.begin(), matched.end(), true));
    }
    return result;
}

std::vector<WindowSweepPoint> windowSweep(const LogDataset& dataset,
                                          const ShutdownClassification& classification,
                                          const std::vector<double>& windowsSeconds) {
    std::vector<WindowSweepPoint> out;
    out.reserve(windowsSeconds.size());
    for (const double w : windowsSeconds) {
        const auto result = coalesce(dataset, classification, w);
        out.push_back(WindowSweepPoint{w, result.relatedFraction(), result.relatedCount});
    }
    return out;
}

ActivityCorrelation activityCorrelation(const CoalescenceResult& result) {
    ActivityCorrelation corr;
    std::map<symbos::PanicCategory, ActivityCorrelationRow> rows;
    std::size_t voice = 0;
    std::size_t message = 0;
    std::size_t unspecified = 0;
    for (const auto& related : result.panics) {
        if (related.relation == PanicRelation::Isolated) continue;
        auto& row = rows[related.panic.record.panic.category];
        row.category = related.panic.record.panic.category;
        switch (related.panic.record.activity) {
            case logger::ActivityContext::VoiceCall:
                ++row.voiceCall;
                ++voice;
                break;
            case logger::ActivityContext::Message:
                ++row.message;
                ++message;
                break;
            case logger::ActivityContext::Unspecified:
                ++row.unspecified;
                ++unspecified;
                break;
        }
        ++corr.totalRelated;
    }
    for (const auto& [category, row] : rows) corr.rows.push_back(row);
    if (corr.totalRelated > 0) {
        const auto total = static_cast<double>(corr.totalRelated);
        corr.voicePercent = 100.0 * static_cast<double>(voice) / total;
        corr.messagePercent = 100.0 * static_cast<double>(message) / total;
        corr.unspecifiedPercent = 100.0 * static_cast<double>(unspecified) / total;
    }
    return corr;
}

}  // namespace symfail::analysis
