// Typed view over collected logs.
//
// The analysis pipeline starts from serialized Log Files — one per phone,
// as the collection infrastructure delivers them — and parses them into
// the observation types the paper's analyses consume:
//   * shutdown observations (REBOOT/LOWBT boots, with off-duration),
//   * freeze observations (boots whose last heartbeat was ALIVE),
//   * panic observations.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "logger/records.hpp"
#include "simkernel/time.hpp"

namespace symfail::analysis {

/// One phone's collected Log File.
struct PhoneLog {
    std::string phoneName;
    std::string logFileContent;
    /// Fraction of the phone's Log File the collection path delivered
    /// (1.0 for an ideal handoff; below 1.0 when transport segments were
    /// permanently lost — the analysis then runs on a partial log).
    double coverage = 1.0;
};

/// A graceful shutdown observed across a boot pair.
struct ShutdownObservation {
    std::string phoneName;
    sim::TimePoint shutdownAt;  ///< last heartbeat (the REBOOT/LOWBT marker)
    sim::TimePoint bootAt;
    logger::PriorShutdown prior{logger::PriorShutdown::Reboot};
    [[nodiscard]] sim::Duration offDuration() const { return bootAt - shutdownAt; }
};

/// A freeze observed at boot (last heartbeat ALIVE -> battery pull).
struct FreezeObservation {
    std::string phoneName;
    /// Last ALIVE heartbeat: the freeze happened within one heartbeat
    /// period after this.
    sim::TimePoint lastAliveAt;
    sim::TimePoint bootAt;
};

/// A recorded panic.
struct PanicObservation {
    std::string phoneName;
    logger::PanicRecord record;
};

/// A user-filed output-failure report.
struct UserReportObservation {
    std::string phoneName;
    logger::UserReportRecord record;
};

/// A structured crash dump (written alongside each panic record).
struct DumpObservation {
    std::string phoneName;
    crash::CrashDump dump;
};

/// Per-phone observation span (first to last record), for MTBF estimates.
struct PhoneSpan {
    std::string phoneName;
    sim::TimePoint first;
    sim::TimePoint last;
    [[nodiscard]] sim::Duration span() const { return last - first; }
};

/// The parsed campaign dataset.
class LogDataset {
public:
    /// Parses every phone's Log File.  Malformed lines are counted, not
    /// fatal (battery pulls tear writes).
    [[nodiscard]] static LogDataset build(const std::vector<PhoneLog>& logs);

    [[nodiscard]] const std::vector<ShutdownObservation>& shutdowns() const {
        return shutdowns_;
    }
    [[nodiscard]] const std::vector<FreezeObservation>& freezes() const {
        return freezes_;
    }
    [[nodiscard]] const std::vector<PanicObservation>& panics() const {
        return panics_;
    }
    [[nodiscard]] const std::vector<UserReportObservation>& userReports() const {
        return userReports_;
    }
    [[nodiscard]] const std::vector<DumpObservation>& dumps() const {
        return dumps_;
    }
    [[nodiscard]] const std::vector<PhoneSpan>& spans() const { return spans_; }
    /// Symbian version per phone (from META records); "unknown" if absent.
    [[nodiscard]] const std::map<std::string, std::string>& versions() const {
        return versions_;
    }
    [[nodiscard]] std::string versionOf(const std::string& phoneName) const;
    /// Collection coverage per phone (fraction of the Log File delivered);
    /// phones absent from the map were collected in full.
    [[nodiscard]] const std::map<std::string, double>& coverageLoss() const {
        return coverageLoss_;
    }
    [[nodiscard]] double coverageOf(const std::string& phoneName) const;
    /// Smallest per-phone coverage in the dataset (1.0 when lossless).
    [[nodiscard]] double minCoverage() const;
    [[nodiscard]] std::size_t malformedLines() const { return malformed_; }
    [[nodiscard]] std::size_t bootCount() const { return boots_; }
    /// Boots following a MAOFF marker (no failure inference possible).
    [[nodiscard]] std::size_t manualOffBoots() const { return manualOffBoots_; }

    /// Total observed wall-clock phone-time (sum of spans).
    [[nodiscard]] sim::Duration totalObservedTime() const;

    /// Approximate heap footprint of the parsed observation vectors;
    /// deterministic for identical input logs.
    [[nodiscard]] std::size_t approxMemoryBytes() const;

private:
    std::vector<ShutdownObservation> shutdowns_;
    std::vector<FreezeObservation> freezes_;
    std::vector<PanicObservation> panics_;
    std::vector<UserReportObservation> userReports_;
    std::vector<DumpObservation> dumps_;
    std::vector<PhoneSpan> spans_;
    std::map<std::string, std::string> versions_;
    std::map<std::string, double> coverageLoss_;
    std::size_t malformed_{0};
    std::size_t boots_{0};
    std::size_t manualOffBoots_{0};
};

}  // namespace symfail::analysis
