#include "analysis/apps_correlation.hpp"

#include <algorithm>
#include <map>
#include <tuple>

namespace symfail::analysis {

sim::FreqCounter runningAppCounts(const LogDataset& dataset) {
    sim::FreqCounter counts;
    for (const auto& p : dataset.panics()) {
        counts.add(static_cast<std::int64_t>(p.record.runningApps.size()));
    }
    return counts;
}

std::vector<AppCorrelationRow> appCorrelation(const CoalescenceResult& result,
                                              double minPercent) {
    using Key = std::tuple<symbos::PanicCategory, PanicRelation, std::string>;
    std::map<Key, std::size_t> counts;
    for (const auto& related : result.panics) {
        for (const auto& app : related.panic.record.runningApps) {
            ++counts[Key{related.panic.record.panic.category, related.relation, app}];
        }
    }
    const double total = static_cast<double>(result.panics.size());
    std::vector<AppCorrelationRow> rows;
    for (const auto& [key, count] : counts) {
        AppCorrelationRow row;
        row.category = std::get<0>(key);
        row.relation = std::get<1>(key);
        row.app = std::get<2>(key);
        row.count = count;
        row.percentOfAllPanics =
            total > 0.0 ? 100.0 * static_cast<double>(count) / total : 0.0;
        if (row.percentOfAllPanics >= minPercent) rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end(),
              [](const AppCorrelationRow& a, const AppCorrelationRow& b) {
                  return a.percentOfAllPanics > b.percentOfAllPanics;
              });
    return rows;
}

std::vector<AppTotalRow> appTotals(const LogDataset& dataset) {
    std::map<std::string, std::size_t> counts;
    for (const auto& p : dataset.panics()) {
        for (const auto& app : p.record.runningApps) ++counts[app];
    }
    const double total = static_cast<double>(dataset.panics().size());
    std::vector<AppTotalRow> rows;
    for (const auto& [app, count] : counts) {
        AppTotalRow row;
        row.app = app;
        row.count = count;
        row.percentOfAllPanics =
            total > 0.0 ? 100.0 * static_cast<double>(count) / total : 0.0;
        rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end(), [](const AppTotalRow& a, const AppTotalRow& b) {
        return a.percentOfAllPanics > b.percentOfAllPanics;
    });
    return rows;
}

}  // namespace symfail::analysis
