#include "analysis/tables.hpp"

#include <algorithm>
#include <cstdio>

namespace symfail::analysis {

TextTable::TextTable(std::vector<std::string> header) : header_{std::move(header)} {}

void TextTable::addRow(std::vector<std::string> cells) {
    cells.resize(header_.size());
    rows_.push_back(Row{std::move(cells), false});
}

void TextTable::addRule() {
    rows_.push_back(Row{{}, true});
}

std::string TextTable::num(double value, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, value);
    return buf;
}

std::string TextTable::render() const {
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t i = 0; i < header_.size(); ++i) {
        widths[i] = header_[i].size();
    }
    for (const auto& row : rows_) {
        if (row.rule) continue;
        for (std::size_t i = 0; i < row.cells.size(); ++i) {
            widths[i] = std::max(widths[i], row.cells[i].size());
        }
    }

    auto renderRow = [&](const std::vector<std::string>& cells) {
        std::string line;
        for (std::size_t i = 0; i < header_.size(); ++i) {
            const std::string& cell = i < cells.size() ? cells[i] : header_[i];
            if (i == 0) {
                line += cell;
                line.append(widths[i] - cell.size(), ' ');
            } else {
                line += "  ";
                line.append(widths[i] - cell.size(), ' ');
                line += cell;
            }
        }
        line += '\n';
        return line;
    };

    std::string out = renderRow(header_);
    std::size_t totalWidth = 0;
    for (const auto w : widths) totalWidth += w;
    totalWidth += 2 * (header_.size() - 1);
    out.append(totalWidth, '-');
    out += '\n';
    for (const auto& row : rows_) {
        if (row.rule) {
            out.append(totalWidth, '-');
            out += '\n';
        } else {
            out += renderRow(row.cells);
        }
    }
    return out;
}

std::string TextTable::renderCsv() const {
    auto escape = [](const std::string& cell) {
        if (cell.find(',') == std::string::npos &&
            cell.find('"') == std::string::npos) {
            return cell;
        }
        std::string quoted = "\"";
        for (const char c : cell) {
            if (c == '"') quoted += '"';
            quoted += c;
        }
        quoted += '"';
        return quoted;
    };
    std::string out;
    for (std::size_t i = 0; i < header_.size(); ++i) {
        if (i != 0) out += ',';
        out += escape(header_[i]);
    }
    out += '\n';
    for (const auto& row : rows_) {
        if (row.rule) continue;
        for (std::size_t i = 0; i < row.cells.size(); ++i) {
            if (i != 0) out += ',';
            out += escape(row.cells[i]);
        }
        out += '\n';
    }
    return out;
}

}  // namespace symfail::analysis
