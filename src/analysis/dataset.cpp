#include "analysis/dataset.hpp"

namespace symfail::analysis {

LogDataset LogDataset::build(const std::vector<PhoneLog>& logs) {
    LogDataset ds;
    for (const PhoneLog& log : logs) {
        std::size_t malformed = 0;
        const auto entries = logger::parseLogFile(log.logFileContent, &malformed);
        ds.malformed_ += malformed;
        if (log.coverage < 1.0) ds.coverageLoss_[log.phoneName] = log.coverage;
        if (entries.empty()) continue;

        bool haveFirst = false;
        sim::TimePoint first{};
        sim::TimePoint last{};
        for (const auto& entry : entries) {
            sim::TimePoint t{};
            switch (entry.type) {
                case logger::LogFileEntry::Type::Panic: t = entry.panic.time; break;
                case logger::LogFileEntry::Type::Boot: t = entry.boot.time; break;
                case logger::LogFileEntry::Type::UserReport:
                    t = entry.userReport.time;
                    break;
                case logger::LogFileEntry::Type::Meta: t = entry.meta.time; break;
                case logger::LogFileEntry::Type::Dump: t = entry.dump.time; break;
            }
            if (!haveFirst || t < first) first = t;
            if (!haveFirst || t > last) last = t;
            haveFirst = true;

            if (entry.type == logger::LogFileEntry::Type::Meta) {
                ds.versions_[log.phoneName] = entry.meta.symbianVersion;
                continue;
            }
            if (entry.type == logger::LogFileEntry::Type::Panic) {
                ds.panics_.push_back(PanicObservation{log.phoneName, entry.panic});
                continue;
            }
            if (entry.type == logger::LogFileEntry::Type::UserReport) {
                ds.userReports_.push_back(
                    UserReportObservation{log.phoneName, entry.userReport});
                continue;
            }
            if (entry.type == logger::LogFileEntry::Type::Dump) {
                ds.dumps_.push_back(DumpObservation{log.phoneName, entry.dump});
                continue;
            }
            ++ds.boots_;
            switch (entry.boot.prior) {
                case logger::PriorShutdown::None:
                    break;
                case logger::PriorShutdown::Freeze:
                    ds.freezes_.push_back(FreezeObservation{
                        log.phoneName, entry.boot.lastBeatAt, entry.boot.time});
                    break;
                case logger::PriorShutdown::Reboot:
                case logger::PriorShutdown::LowBattery:
                    ds.shutdowns_.push_back(
                        ShutdownObservation{log.phoneName, entry.boot.lastBeatAt,
                                            entry.boot.time, entry.boot.prior});
                    break;
                case logger::PriorShutdown::ManualOff:
                    ++ds.manualOffBoots_;
                    break;
            }
        }
        ds.spans_.push_back(PhoneSpan{log.phoneName, first, last});
    }
    return ds;
}

std::string LogDataset::versionOf(const std::string& phoneName) const {
    const auto it = versions_.find(phoneName);
    return it == versions_.end() ? "unknown" : it->second;
}

double LogDataset::coverageOf(const std::string& phoneName) const {
    const auto it = coverageLoss_.find(phoneName);
    return it == coverageLoss_.end() ? 1.0 : it->second;
}

double LogDataset::minCoverage() const {
    double lowest = 1.0;
    for (const auto& [phone, coverage] : coverageLoss_) {
        if (coverage < lowest) lowest = coverage;
    }
    return lowest;
}

sim::Duration LogDataset::totalObservedTime() const {
    sim::Duration total{};
    for (const auto& span : spans_) total += span.span();
    return total;
}

std::size_t LogDataset::approxMemoryBytes() const {
    constexpr std::size_t mapNode = 3 * sizeof(void*);
    std::size_t total = sizeof *this;
    total += shutdowns_.capacity() * sizeof(ShutdownObservation);
    for (const auto& obs : shutdowns_) total += obs.phoneName.size();
    total += freezes_.capacity() * sizeof(FreezeObservation);
    for (const auto& obs : freezes_) total += obs.phoneName.size();
    total += panics_.capacity() * sizeof(PanicObservation);
    for (const auto& obs : panics_) {
        total += obs.phoneName.size();
        for (const auto& app : obs.record.runningApps) {
            total += app.size() + sizeof(std::string);
        }
    }
    total += userReports_.capacity() * sizeof(UserReportObservation);
    for (const auto& obs : userReports_) {
        total += obs.phoneName.size() + obs.record.symptom.size();
    }
    total += dumps_.capacity() * sizeof(DumpObservation);
    for (const auto& obs : dumps_) {
        total += obs.phoneName.size() + obs.dump.processName.size();
        for (const auto& app : obs.dump.runningApps) {
            total += app.size() + sizeof(std::string);
        }
        for (const auto& frame : obs.dump.frames) {
            total += frame.size() + sizeof(std::string);
        }
    }
    total += spans_.capacity() * sizeof(PhoneSpan);
    for (const auto& span : spans_) total += span.phoneName.size();
    for (const auto& [phone, version] : versions_) {
        total += phone.size() + version.size() + 2 * sizeof(std::string) + mapNode;
    }
    for (const auto& entry : coverageLoss_) {
        total += entry.first.size() + sizeof(std::string) + sizeof(double) + mapNode;
    }
    return total;
}

}  // namespace symfail::analysis
