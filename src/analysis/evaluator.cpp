#include "analysis/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace symfail::analysis {
namespace {

/// Greedy one-to-one matching of detections to truth times within a
/// tolerance; returns the score.
DetectionScore matchEvents(std::vector<double> detections, std::vector<double> truths,
                           double toleranceSeconds) {
    std::sort(detections.begin(), detections.end());
    std::sort(truths.begin(), truths.end());
    DetectionScore score;
    std::vector<bool> used(truths.size(), false);
    for (const double d : detections) {
        bool matched = false;
        for (std::size_t i = 0; i < truths.size(); ++i) {
            if (used[i]) continue;
            if (std::abs(truths[i] - d) <= toleranceSeconds) {
                used[i] = true;
                matched = true;
                break;
            }
            if (truths[i] - d > toleranceSeconds) break;  // sorted: no later match
        }
        if (matched) {
            ++score.truePositives;
        } else {
            ++score.falsePositives;
        }
    }
    score.falseNegatives = static_cast<std::size_t>(
        std::count(used.begin(), used.end(), false));
    return score;
}

void accumulate(DetectionScore& into, const DetectionScore& from) {
    into.truePositives += from.truePositives;
    into.falsePositives += from.falsePositives;
    into.falseNegatives += from.falseNegatives;
}

}  // namespace

EvaluationReport evaluate(const LogDataset& dataset,
                          const ShutdownClassification& classification,
                          const TruthMap& truth, double toleranceSeconds) {
    EvaluationReport report;

    for (const auto& [phoneName, groundTruth] : truth) {
        // Freeze detection: detected freeze time = last ALIVE heartbeat.
        std::vector<double> detectedFreezes;
        for (const auto& f : dataset.freezes()) {
            if (f.phoneName == phoneName) {
                detectedFreezes.push_back(f.lastAliveAt.asSecondsF());
            }
        }
        std::vector<double> trueFreezes;
        for (const auto& e : groundTruth->eventsOf(phone::TruthKind::Freeze)) {
            trueFreezes.push_back(e.time.asSecondsF());
        }
        accumulate(report.freezeDetection,
                   matchEvents(std::move(detectedFreezes), std::move(trueFreezes),
                               toleranceSeconds));

        // Self-shutdown discrimination.
        std::vector<double> detectedSelf;
        for (const auto& s : classification.selfShutdowns) {
            if (s.phoneName == phoneName) {
                detectedSelf.push_back(s.shutdownAt.asSecondsF());
            }
        }
        std::vector<double> trueSelf;
        for (const auto& e : groundTruth->eventsOf(phone::TruthKind::SelfShutdown)) {
            trueSelf.push_back(e.time.asSecondsF());
        }
        accumulate(report.selfShutdownDetection,
                   matchEvents(std::move(detectedSelf), std::move(trueSelf),
                               toleranceSeconds));

        report.panicsInjected += groundTruth->countOf(phone::TruthKind::PanicInjected);
        report.outputFailuresInjected +=
            groundTruth->countOf(phone::TruthKind::OutputFailureInjected);
    }

    report.panicsLogged = dataset.panics().size();
    report.userReportsLogged = dataset.userReports().size();
    return report;
}

}  // namespace symfail::analysis
