#include "analysis/reliability.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace symfail::analysis {

ExponentialFit fitExponential(std::span<const double> samplesHours) {
    ExponentialFit fit;
    fit.samples = samplesHours.size();
    if (samplesHours.empty()) return fit;
    double sum = 0.0;
    for (const double x : samplesHours) sum += x;
    fit.meanHours = sum / static_cast<double>(samplesHours.size());
    if (fit.meanHours <= 0.0) return fit;
    // logL = -n log(mean) - sum(x)/mean = -n (log mean + 1)
    fit.logLikelihood = -static_cast<double>(fit.samples) *
                        (std::log(fit.meanHours) + 1.0);
    return fit;
}

WeibullFit fitWeibull(std::span<const double> samplesHours) {
    WeibullFit fit;
    fit.samples = samplesHours.size();
    if (samplesHours.size() < 3) return fit;

    // Work in logs; guard zero samples.
    std::vector<double> x;
    x.reserve(samplesHours.size());
    for (const double s : samplesHours) x.push_back(std::max(s, 1e-9));
    const auto n = static_cast<double>(x.size());
    double sumLog = 0.0;
    for (const double v : x) sumLog += std::log(v);
    const double meanLog = sumLog / n;

    // Newton iteration on the MLE shape equation:
    //   f(k) = sum(x^k log x)/sum(x^k) - 1/k - meanLog = 0
    double k = 1.0;
    bool converged = false;
    for (int iter = 0; iter < 100; ++iter) {
        double s0 = 0.0;  // sum x^k
        double s1 = 0.0;  // sum x^k log x
        double s2 = 0.0;  // sum x^k (log x)^2
        for (const double v : x) {
            const double lv = std::log(v);
            const double p = std::pow(v, k);
            s0 += p;
            s1 += p * lv;
            s2 += p * lv * lv;
        }
        const double f = s1 / s0 - 1.0 / k - meanLog;
        const double fprime = (s2 * s0 - s1 * s1) / (s0 * s0) + 1.0 / (k * k);
        const double step = f / fprime;
        k -= step;
        if (k <= 1e-3) k = 1e-3;
        if (k > 100.0) k = 100.0;
        if (std::abs(step) < 1e-9) {
            converged = true;
            break;
        }
    }
    double s0 = 0.0;
    for (const double v : x) s0 += std::pow(v, k);
    const double scale = std::pow(s0 / n, 1.0 / k);

    fit.shape = k;
    fit.scaleHours = scale;
    fit.converged = converged;
    // logL = n log k - n k log(scale) + (k-1) sum(log x) - sum((x/scale)^k)
    double sumScaled = 0.0;
    for (const double v : x) sumScaled += std::pow(v / scale, k);
    fit.logLikelihood = n * std::log(k) - n * k * std::log(scale) +
                        (k - 1.0) * sumLog - sumScaled;
    return fit;
}

double aic(double logLikelihood, int parameters) {
    return 2.0 * parameters - 2.0 * logLikelihood;
}

TbfAnalysis analyzeTimeBetweenFailures(const LogDataset& dataset,
                                       const ShutdownClassification& classification) {
    TbfAnalysis analysis;
    // Per-phone ordered failure instants.
    std::map<std::string, std::vector<double>> perPhone;
    for (const auto& freeze : dataset.freezes()) {
        perPhone[freeze.phoneName].push_back(freeze.lastAliveAt.asSecondsF());
    }
    for (const auto& self : classification.selfShutdowns) {
        perPhone[self.phoneName].push_back(self.shutdownAt.asSecondsF());
    }
    for (auto& [phone, times] : perPhone) {
        std::sort(times.begin(), times.end());
        for (std::size_t i = 1; i < times.size(); ++i) {
            const double gapHours = (times[i] - times[i - 1]) / 3'600.0;
            if (gapHours > 0.0) analysis.interarrivalsHours.push_back(gapHours);
        }
    }
    analysis.exponential = fitExponential(analysis.interarrivalsHours);
    analysis.weibull = fitWeibull(analysis.interarrivalsHours);
    if (analysis.weibull.samples >= 3 && analysis.weibull.converged) {
        analysis.weibullPreferred =
            aic(analysis.weibull.logLikelihood, 2) + 2.0 <
            aic(analysis.exponential.logLikelihood, 1);
    }
    return analysis;
}

}  // namespace symfail::analysis
