#include "analysis/reliability.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "analysis/numerics.hpp"

namespace symfail::analysis {

ExponentialFit fitExponential(std::span<const double> samplesHours) {
    ExponentialFit fit;
    fit.samples = samplesHours.size();
    if (samplesHours.empty()) return fit;
    KahanSum sum;
    for (const double x : samplesHours) sum.add(x);
    fit.meanHours = sum.value() / static_cast<double>(samplesHours.size());
    if (fit.meanHours <= 0.0) return fit;
    // logL = -n log(mean) - sum(x)/mean = -n (log mean + 1)
    fit.logLikelihood = -static_cast<double>(fit.samples) *
                        (std::log(fit.meanHours) + 1.0);
    return fit;
}

WeibullFit fitWeibull(std::span<const double> samplesHours) {
    WeibullFit fit;
    fit.samples = samplesHours.size();
    if (samplesHours.size() < 3) return fit;

    // Work in logs; guard zero samples.
    std::vector<double> x;
    x.reserve(samplesHours.size());
    for (const double s : samplesHours) x.push_back(std::max(s, 1e-9));
    const auto n = static_cast<double>(x.size());
    const double logSum = sumLog(x);

    // Profile log-likelihood over the shape k with the scale maximized
    // out in closed form: scale(k) = (sum x^k / n)^(1/k), at which the
    // scaled sum equals n, so
    //   l(k) = n log k - n k log scale(k) + (k-1) sum(log x) - n.
    // Maximized by the shared golden-section search over log k (the
    // profile is unimodal; log-space keeps the bracket scale-free).
    const auto negProfile = [&](double logK) {
        const double k = std::exp(logK);
        KahanSum powered;
        for (const double v : x) powered.add(std::pow(v, k));
        const double logScale = std::log(powered.value() / n) / k;
        const double logLik =
            n * std::log(k) - n * k * logScale + (k - 1.0) * logSum - n;
        return -logLik;
    };
    const auto best =
        goldenSectionMinimize(std::log(1e-3), std::log(100.0), negProfile);
    const double k = std::exp(best.x);
    KahanSum powered;
    for (const double v : x) powered.add(std::pow(v, k));
    const double scale = std::pow(powered.value() / n, 1.0 / k);

    fit.shape = k;
    fit.scaleHours = scale;
    // The bracketed search always collapses to the profile maximum; the
    // flag survives for API compatibility (and still guards the n < 3
    // early-out above).
    fit.converged = true;
    fit.logLikelihood = -best.fx;
    return fit;
}

double aic(double logLikelihood, int parameters) {
    return 2.0 * parameters - 2.0 * logLikelihood;
}

double bic(double logLikelihood, int parameters, std::size_t samples) {
    const double n = samples == 0 ? 1.0 : static_cast<double>(samples);
    return parameters * std::log(n) - 2.0 * logLikelihood;
}

TbfAnalysis analyzeTimeBetweenFailures(const LogDataset& dataset,
                                       const ShutdownClassification& classification) {
    TbfAnalysis analysis;
    // Per-phone ordered failure instants.
    std::map<std::string, std::vector<double>> perPhone;
    for (const auto& freeze : dataset.freezes()) {
        perPhone[freeze.phoneName].push_back(freeze.lastAliveAt.asSecondsF());
    }
    for (const auto& self : classification.selfShutdowns) {
        perPhone[self.phoneName].push_back(self.shutdownAt.asSecondsF());
    }
    for (auto& [phone, times] : perPhone) {
        std::sort(times.begin(), times.end());
        for (std::size_t i = 1; i < times.size(); ++i) {
            const double gapHours = (times[i] - times[i - 1]) / 3'600.0;
            if (gapHours > 0.0) analysis.interarrivalsHours.push_back(gapHours);
        }
    }
    analysis.exponential = fitExponential(analysis.interarrivalsHours);
    analysis.weibull = fitWeibull(analysis.interarrivalsHours);
    if (analysis.weibull.samples >= 3 && analysis.weibull.converged) {
        analysis.weibullPreferred =
            aic(analysis.weibull.logLikelihood, 2) + 2.0 <
            aic(analysis.exponential.logLikelihood, 1);
    }
    return analysis;
}

}  // namespace symfail::analysis
