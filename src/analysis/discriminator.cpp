#include "analysis/discriminator.hpp"

#include <algorithm>

namespace symfail::analysis {

ShutdownClassification ShutdownDiscriminator::classify(const LogDataset& dataset) const {
    ShutdownClassification out;
    std::vector<double> selfDurations;
    for (const auto& s : dataset.shutdowns()) {
        if (s.prior == logger::PriorShutdown::LowBattery) {
            out.lowBattery.push_back(s);
            continue;
        }
        const double seconds = s.offDuration().asSecondsF();
        if (seconds < threshold_) {
            out.selfShutdowns.push_back(s);
            selfDurations.push_back(seconds);
        } else {
            out.userShutdowns.push_back(s);
        }
    }
    if (!selfDurations.empty()) {
        auto mid = selfDurations.begin() +
                   static_cast<std::ptrdiff_t>(selfDurations.size() / 2);
        std::nth_element(selfDurations.begin(), mid, selfDurations.end());
        out.selfMedianSeconds = *mid;
    }
    return out;
}

sim::Histogram ShutdownDiscriminator::rebootDurationHistogram(const LogDataset& dataset,
                                                              double maxSeconds,
                                                              std::size_t bins) {
    sim::Histogram hist{0.0, maxSeconds, bins};
    for (const auto& s : dataset.shutdowns()) {
        if (s.prior == logger::PriorShutdown::LowBattery) continue;
        hist.add(s.offDuration().asSecondsF());
    }
    return hist;
}

}  // namespace symfail::analysis
