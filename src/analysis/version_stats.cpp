#include "analysis/version_stats.hpp"

#include <algorithm>
#include <map>

namespace symfail::analysis {

std::vector<VersionRow> versionBreakdown(const LogDataset& dataset,
                                         const ShutdownClassification& classification) {
    std::map<std::string, VersionRow> rows;
    auto rowFor = [&](const std::string& phoneName) -> VersionRow& {
        const std::string version = dataset.versionOf(phoneName);
        auto& row = rows[version];
        row.version = version;
        return row;
    };

    for (const auto& span : dataset.spans()) {
        auto& row = rowFor(span.phoneName);
        ++row.phones;
        row.observedHours += span.span().asHoursF();
    }
    for (const auto& freeze : dataset.freezes()) ++rowFor(freeze.phoneName).freezes;
    for (const auto& self : classification.selfShutdowns) {
        ++rowFor(self.phoneName).selfShutdowns;
    }
    for (const auto& panic : dataset.panics()) ++rowFor(panic.phoneName).panics;

    std::vector<VersionRow> out;
    out.reserve(rows.size());
    for (auto& [version, row] : rows) out.push_back(std::move(row));
    return out;
}

}  // namespace symfail::analysis
