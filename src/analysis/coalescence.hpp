// Panic / high-level-event coalescence (Figures 4 and 5) and the
// panic-activity relationship (Table 3).
//
// A panic is *related* to a high-level (HL) event — a freeze or a
// self-shutdown — when the two fall within a temporal window (the paper
// settles on five minutes after a sensitivity analysis: coalesced pairs
// grow with the window up to ~5 min, then plateau until hour-scale
// windows start capturing uncorrelated events).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/dataset.hpp"
#include "analysis/discriminator.hpp"
#include "symbos/panic.hpp"

namespace symfail::analysis {

/// What a panic coalesced with.
enum class PanicRelation : std::uint8_t { Isolated, Freeze, SelfShutdown };

/// A panic observation together with its HL relation.
struct RelatedPanic {
    PanicObservation panic;
    PanicRelation relation{PanicRelation::Isolated};
};

/// Per-category coalescence summary (Figure 5b).
struct CategoryRelationRow {
    symbos::PanicCategory category{};
    std::size_t total{0};
    std::size_t toFreeze{0};
    std::size_t toSelfShutdown{0};
    [[nodiscard]] std::size_t isolated() const {
        return total - toFreeze - toSelfShutdown;
    }
};

/// Full coalescence result.
struct CoalescenceResult {
    std::vector<RelatedPanic> panics;
    std::vector<CategoryRelationRow> byCategory;
    std::size_t relatedCount{0};
    /// Fraction of panics related to any HL event (paper: ~51%).
    [[nodiscard]] double relatedFraction() const {
        return panics.empty() ? 0.0
                              : static_cast<double>(relatedCount) /
                                    static_cast<double>(panics.size());
    }
    /// HL events with at least one related panic.
    std::size_t hlWithPanic{0};
    std::size_t hlTotal{0};
};

/// The paper's window.
inline constexpr double kCoalescenceWindowSeconds = 300.0;

/// Coalesces panics with HL events per phone within +-window.
[[nodiscard]] CoalescenceResult coalesce(const LogDataset& dataset,
                                         const ShutdownClassification& classification,
                                         double windowSeconds = kCoalescenceWindowSeconds);

/// Window sensitivity: related-fraction for each window size (the A2
/// ablation reproducing the paper's window-selection argument).
struct WindowSweepPoint {
    double windowSeconds;
    double relatedFraction;
    std::size_t relatedCount;
};
[[nodiscard]] std::vector<WindowSweepPoint> windowSweep(
    const LogDataset& dataset, const ShutdownClassification& classification,
    const std::vector<double>& windowsSeconds);

/// Table 3: activity context of HL-related panics, by category.
struct ActivityCorrelationRow {
    symbos::PanicCategory category{};
    std::size_t voiceCall{0};
    std::size_t message{0};
    std::size_t unspecified{0};
    [[nodiscard]] std::size_t total() const {
        return voiceCall + message + unspecified;
    }
};
struct ActivityCorrelation {
    std::vector<ActivityCorrelationRow> rows;
    std::size_t totalRelated{0};
    /// Percentages over all HL-related panics (paper: voice 38.6%,
    /// message 6.6%, unspecified 54.8%).
    double voicePercent{0.0};
    double messagePercent{0.0};
    double unspecifiedPercent{0.0};
};
[[nodiscard]] ActivityCorrelation activityCorrelation(const CoalescenceResult& result);

}  // namespace symfail::analysis
