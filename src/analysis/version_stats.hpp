// Failure breakdown by Symbian OS version.
//
// The paper's fleet ran "Symbian OS versions 6.1 to 8.0 or version 9.0"
// with 8.0 the majority, but Section 6 never breaks its results down by
// version.  With META records in the Log File, the breakdown is a
// straightforward extension: per version, how much observation time, how
// many failures, and the resulting failure rate.
#pragma once

#include <string>
#include <vector>

#include "analysis/dataset.hpp"
#include "analysis/discriminator.hpp"

namespace symfail::analysis {

/// Per-version aggregate.
struct VersionRow {
    std::string version;
    std::size_t phones{0};
    double observedHours{0.0};
    std::size_t freezes{0};
    std::size_t selfShutdowns{0};
    std::size_t panics{0};
    /// Combined user-perceived failures per 30 days of observation.
    [[nodiscard]] double failuresPer30Days() const {
        if (observedHours <= 0.0) return 0.0;
        return static_cast<double>(freezes + selfShutdowns) / observedHours * 24.0 *
               30.0;
    }
};

/// Aggregates the campaign by OS version, sorted by version string.
[[nodiscard]] std::vector<VersionRow> versionBreakdown(
    const LogDataset& dataset, const ShutdownClassification& classification);

}  // namespace symfail::analysis
