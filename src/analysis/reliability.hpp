// Time-between-failures distribution fitting — a reliability-engineering
// extension of the paper's MTBF figures.
//
// The paper reports only means (MTBFr 313 h, MTBS 250 h).  Failure data
// studies usually go further and ask whether inter-failure times are
// exponential (memoryless failures) or Weibull with shape < 1 (bursty:
// a failure makes another one soon more likely — consistent with the
// paper's error-propagation observations).  This module fits both by
// maximum likelihood and compares them with AIC.
#pragma once

#include <span>
#include <vector>

#include "analysis/dataset.hpp"
#include "analysis/discriminator.hpp"

namespace symfail::analysis {

/// Exponential fit (MLE: mean of the sample).
struct ExponentialFit {
    double meanHours{0.0};
    double logLikelihood{0.0};
    std::size_t samples{0};
};

/// Weibull fit (MLE via Newton iteration on the shape equation).
struct WeibullFit {
    double shape{1.0};       ///< <1: bursty (decreasing hazard), >1: wear-out
    double scaleHours{0.0};
    double logLikelihood{0.0};
    std::size_t samples{0};
    bool converged{false};
};

/// Fits an exponential to positive samples (hours).  Empty input yields a
/// zero-sample fit.
[[nodiscard]] ExponentialFit fitExponential(std::span<const double> samplesHours);

/// Fits a Weibull to positive samples (hours) by MLE.
[[nodiscard]] WeibullFit fitWeibull(std::span<const double> samplesHours);

/// Akaike information criterion: 2k - 2 logL.
[[nodiscard]] double aic(double logLikelihood, int parameters);

/// Bayesian information criterion: k ln n - 2 logL.  Shares the "lower is
/// better" convention with aic(); the SRGM model selection reports both.
[[nodiscard]] double bic(double logLikelihood, int parameters, std::size_t samples);

/// Full inter-failure-time analysis over a campaign.
struct TbfAnalysis {
    std::vector<double> interarrivalsHours;  ///< pooled, per-phone gaps
    ExponentialFit exponential;
    WeibullFit weibull;
    /// True when the Weibull's AIC beats the exponential's by > 2 (the
    /// conventional "clearly better" margin).
    bool weibullPreferred{false};
};

/// Pools per-phone gaps between consecutive user-perceived failures
/// (freezes + classified self-shutdowns) and fits both models.
[[nodiscard]] TbfAnalysis analyzeTimeBetweenFailures(
    const LogDataset& dataset, const ShutdownClassification& classification);

}  // namespace symfail::analysis
