// Convenience active object dispatching to a std::function.
//
// Used by the logger's detector AOs and the fault drivers; real Symbian
// code subclasses CActive the same way, this just removes the boilerplate.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "symbos/active.hpp"

namespace symfail::symbos {

/// Active object whose RunL / DoCancel are provided as callables.
class FunctionAo final : public ActiveObject {
public:
    using RunFn = std::function<void(ExecContext&, int status)>;
    using CancelFn = std::function<void()>;

    FunctionAo(ActiveScheduler& scheduler, std::string name, RunFn run,
               Priority priority = Priority::Standard)
        : ActiveObject(scheduler, std::move(name), priority), run_{std::move(run)} {}

    void setCancelFn(CancelFn fn) { cancelFn_ = std::move(fn); }

protected:
    void runL(ExecContext& ctx, int status) override {
        if (run_) run_(ctx, status);
    }
    void doCancel() override {
        if (cancelFn_) cancelFn_();
    }

private:
    RunFn run_;
    CancelFn cancelFn_;
};

}  // namespace symfail::symbos
