// Active objects and the active scheduler — Symbian's upper level of
// multitasking.
//
// Within a thread, cooperative "active objects" (AOs) handle completed
// asynchronous requests under a non-preemptive, priority-ordered, event-
// driven scheduler.  The model reproduces the two classic failure modes:
//   * a completion signal arriving for an AO that is not active
//       -> E32USER-CBase 46 (stray signal)
//   * RunL() leaving with the default Error() handler installed
//       -> E32USER-CBase 47
// and feeds each dispatch's simulated execution cost to the kernel's
// ViewSrv watchdog, which panics monopolizing applications (ViewSrv 11).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "simkernel/simulator.hpp"
#include "symbos/kernel.hpp"

namespace symfail::symbos {

class ActiveScheduler;

/// Base class for active objects (Symbian's CActive).
class ActiveObject {
public:
    /// Standard CActive priorities; higher runs first among completed AOs.
    enum class Priority : int {
        Idle = -100,
        Low = -20,
        Standard = 0,
        UserInput = 10,
        High = 20,
    };

    ActiveObject(ActiveScheduler& scheduler, std::string name,
                 Priority priority = Priority::Standard);
    virtual ~ActiveObject();
    ActiveObject(const ActiveObject&) = delete;
    ActiveObject& operator=(const ActiveObject&) = delete;

    /// Marks an asynchronous request as issued; the next completion will
    /// dispatch runL().
    void setActive() { active_ = true; }
    [[nodiscard]] bool isActive() const { return active_; }

    /// Cancels any outstanding request (Symbian's Cancel()).
    void cancel();

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] Priority priority() const { return priority_; }
    [[nodiscard]] ActiveScheduler& scheduler() { return *scheduler_; }
    /// True once the owning scheduler has been destroyed (process teardown
    /// raced the AO's owner); the AO is inert from then on.
    [[nodiscard]] bool detached() const { return scheduler_ == nullptr; }

protected:
    /// Handles a completed request; `status` is the completion code.  May
    /// leave; an untrapped leave reaches the scheduler's error handler.
    virtual void runL(ExecContext& ctx, int status) = 0;
    /// Cancels the outstanding request at its source.
    virtual void doCancel() {}

private:
    friend class ActiveScheduler;
    ActiveScheduler* scheduler_;
    std::string name_;
    Priority priority_;
    bool active_{false};
    sim::EventId pendingDispatch_{};
};

/// Per-process active scheduler (Symbian's CActiveScheduler).
class ActiveScheduler {
public:
    ActiveScheduler(Kernel& kernel, ProcessId pid);
    ~ActiveScheduler();
    ActiveScheduler(const ActiveScheduler&) = delete;
    ActiveScheduler& operator=(const ActiveScheduler&) = delete;

    /// Options for completing a request.
    struct CompleteOpts {
        /// Delay before the completion is dispatched.
        sim::Duration delay{};
        /// Simulated execution cost of the runL() body, reported to the
        /// ViewSrv watchdog.
        sim::Duration runCost{};
    };

    /// Completes an asynchronous request on `ao` with `code`.  Dispatch
    /// happens as a simulator event; if the AO is not active at dispatch
    /// time the scheduler panics the process with a stray signal
    /// (E32USER-CBase 46).
    void complete(ActiveObject& ao, int code);
    void complete(ActiveObject& ao, int code, CompleteOpts opts);

    /// Error handler invoked when runL() leaves.  Returns true when the
    /// error was handled; the default implementation returns false, which
    /// panics the process with E32USER-CBase 47 — exactly the behaviour
    /// of CActiveScheduler::Error().
    using ErrorHandler = std::function<bool(ExecContext&, int leaveCode)>;
    void setErrorHandler(ErrorHandler handler) { errorHandler_ = std::move(handler); }

    [[nodiscard]] Kernel& kernel() { return *kernel_; }
    [[nodiscard]] ProcessId pid() const { return pid_; }
    [[nodiscard]] std::size_t registeredCount() const { return objects_.size(); }

private:
    friend class ActiveObject;
    void add(ActiveObject* ao);
    void remove(ActiveObject* ao);
    void dispatch(ActiveObject* ao, int code, sim::Duration runCost);

    Kernel* kernel_;
    ProcessId pid_;
    std::vector<ActiveObject*> objects_;
    ErrorHandler errorHandler_;
};

}  // namespace symfail::symbos
