#include "symbos/active.hpp"

#include <algorithm>

namespace symfail::symbos {

ActiveObject::ActiveObject(ActiveScheduler& scheduler, std::string name, Priority priority)
    : scheduler_{&scheduler}, name_{std::move(name)}, priority_{priority} {
    scheduler_->add(this);
}

ActiveObject::~ActiveObject() {
    cancel();
    if (scheduler_ != nullptr) scheduler_->remove(this);
}

void ActiveObject::cancel() {
    if (pendingDispatch_.valid() && scheduler_ != nullptr) {
        scheduler_->kernel().simulator().cancel(pendingDispatch_);
    }
    pendingDispatch_ = {};
    if (active_) {
        doCancel();
        active_ = false;
    }
}

ActiveScheduler::ActiveScheduler(Kernel& kernel, ProcessId pid)
    : kernel_{&kernel}, pid_{pid} {}

ActiveScheduler::~ActiveScheduler() {
    // AOs outliving their scheduler (e.g. owned by a component torn down
    // after the kernel) must not touch it again: cancel their pending
    // dispatches and detach them.
    for (ActiveObject* ao : objects_) {
        if (ao->pendingDispatch_.valid()) {
            kernel_->simulator().cancel(ao->pendingDispatch_);
            ao->pendingDispatch_ = {};
        }
        ao->active_ = false;
        ao->scheduler_ = nullptr;
    }
}

void ActiveScheduler::add(ActiveObject* ao) {
    objects_.push_back(ao);
}

void ActiveScheduler::remove(ActiveObject* ao) {
    objects_.erase(std::remove(objects_.begin(), objects_.end(), ao), objects_.end());
}

void ActiveScheduler::complete(ActiveObject& ao, int code) {
    complete(ao, code, CompleteOpts{});
}

void ActiveScheduler::complete(ActiveObject& ao, int code, CompleteOpts opts) {
    ao.pendingDispatch_ = kernel_->simulator().scheduleAfter(
        opts.delay, "symbos.ao", [this, ao = &ao, code, runCost = opts.runCost]() {
            dispatch(ao, code, runCost);
        });
}

void ActiveScheduler::dispatch(ActiveObject* ao, int code, sim::Duration runCost) {
    ao->pendingDispatch_ = {};
    // Emitted before RunL: the AO (and its name) may not survive dispatch.
    if (auto* trace = kernel_->simulator().traceSink()) {
        const obs::TraceArg args[] = {{"code", code}};
        trace->span(kernel_->traceTrack(), "symbos.ao", ao->name(),
                    kernel_->simulator().now(), runCost, args);
    }
    const auto outcome = kernel_->runInProcess(pid_, [&](ExecContext& ctx) {
        if (!ao->isActive()) {
            ctx.panic(kCBaseStraySignal,
                      "completion signal for inactive active object '" + ao->name() + "'");
        }
        ao->active_ = false;
        try {
            ao->runL(ctx, code);
        } catch (const LeaveError& leave) {
            // RunL left: route to the scheduler's Error() handler; the
            // default behaviour raises E32USER-CBase 47.
            if (!errorHandler_ || !errorHandler_(ctx, leave.code)) {
                ctx.panic(kCBaseSchedulerError,
                          "active object '" + ao->name() + "' RunL left with code " +
                              std::to_string(leave.code) +
                              " and Error() was not replaced");
            }
        }
    });
    if (outcome == Kernel::RunOutcome::Completed) {
        kernel_->reportDispatchCost(pid_, runCost);
    }
}

}  // namespace symfail::symbos
