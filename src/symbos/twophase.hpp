// Two-phase construction — Symbian's leak-safe construction protocol.
//
// Objects with dynamic extensions are built in two phases: a first phase
// that cannot fail, then a ConstructL() that allocates and may leave.
// The NewLC idiom pushes the half-built object on the cleanup stack before
// running the second phase, so a leave frees it (the paper's Section 2
// lists this among Symbian's memory-management mechanisms).
//
// `TwoPhase<T>` packages the idiom for model types: T needs a nothrow
// first-phase constructor and a `constructL(ExecContext&)` second phase.
#pragma once

#include <memory>
#include <utility>

#include "symbos/cleanup.hpp"
#include "symbos/kernel.hpp"

namespace symfail::symbos {

/// Builds a T under the NewLC protocol: the half-built object sits on the
/// cleanup stack while `constructL` runs; on a leave it is destroyed, on
/// success it is popped and returned.
template <typename T, typename... Args>
[[nodiscard]] std::unique_ptr<T> newL(ExecContext& ctx, Args&&... args) {
    auto object = std::make_unique<T>(std::forward<Args>(args)...);  // phase one
    // Hand ownership to the cleanup stack for the duration of phase two:
    // a leave runs the op (destroying the half-built object); success pops
    // it without running (CleanupStack::pop), exactly like Pop() after
    // NewLC.
    T* raw = object.release();
    ctx.cleanupStack().pushL(ctx, [raw]() { delete raw; });
    raw->constructL(ctx);  // phase two: may leave
    ctx.cleanupStack().pop(ctx);
    return std::unique_ptr<T>{raw};
}

}  // namespace symfail::symbos
