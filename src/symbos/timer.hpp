// Asynchronous timer service (Symbian's RTimer).
//
// An RTimer delivers a completion to an active object at a requested time.
// Requesting a second event while one is outstanding panics with
// E32USER-CBase 15 ("timer event already outstanding").
#pragma once

#include "simkernel/simulator.hpp"
#include "symbos/active.hpp"

namespace symfail::symbos {

/// Timer request source bound to one active object.
class RTimer {
public:
    explicit RTimer(ActiveObject& client)
        : client_{&client},
          simulator_{&client.scheduler().kernel().simulator()} {}
    ~RTimer() { cancel(); }
    RTimer(const RTimer&) = delete;
    RTimer& operator=(const RTimer&) = delete;

    /// Requests a completion `delay` from now (RTimer::After).  Panics
    /// E32USER-CBase 15 when a request is already outstanding.
    void after(const ExecContext& ctx, sim::Duration delay);

    /// Requests a completion at an absolute time (RTimer::At).  Panics
    /// E32USER-CBase 15 when a request is already outstanding.
    void at(const ExecContext& ctx, sim::TimePoint when);

    /// Cancels the outstanding request, if any; the client completes with
    /// KErrCancel semantics via ActiveObject::cancel (callers follow the
    /// Symbian idiom of cancelling the AO, which invokes DoCancel).
    void cancel();

    [[nodiscard]] bool outstanding() const { return outstanding_; }

private:
    void arm(const ExecContext& ctx, sim::TimePoint when);

    ActiveObject* client_;
    sim::Simulator* simulator_;
    bool outstanding_{false};
    sim::EventId pending_{};
};

}  // namespace symfail::symbos
