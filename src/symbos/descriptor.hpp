// Bounded descriptor model (Symbian's 16-bit TBuf/TDes family).
//
// Descriptors are Symbian's bounds-aware string/buffer abstraction: a
// current length plus a fixed maximum.  Misuse does not corrupt memory —
// it panics:
//   * position arguments out of bounds (Left/Right/Mid/Insert/Delete/
//     Replace)                      -> USER 10
//   * growing past the maximum length (Copy/Append/Insert/Replace/Fill/
//     SetLength/ZeroTerminate)      -> USER 11
// The study found USER 11 among the most frequent panics (5.81%), caused
// by copy operations exceeding a descriptor's maximum length.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace symfail::symbos {

class ExecContext;

/// A modifiable, bounded descriptor (TBuf-like).
class Descriptor {
public:
    /// Creates an empty descriptor with the given maximum length.
    explicit Descriptor(std::size_t maxLength) : max_{maxLength} {}

    [[nodiscard]] std::size_t length() const { return data_.size(); }
    [[nodiscard]] std::size_t maxLength() const { return max_; }
    [[nodiscard]] std::string_view view() const { return data_; }

    /// Replaces the content (TDes::Copy); overflow panics USER 11.
    void copy(const ExecContext& ctx, std::string_view s);
    /// Appends (TDes::Append); overflow panics USER 11.
    void append(const ExecContext& ctx, std::string_view s);
    /// Inserts at `pos` (TDes::Insert); bad `pos` panics USER 10, overflow
    /// panics USER 11.
    void insert(const ExecContext& ctx, std::size_t pos, std::string_view s);
    /// Deletes `n` characters at `pos` (TDes::Delete); bad `pos` panics
    /// USER 10.  `n` is clamped to the available tail, as in Symbian.
    void erase(const ExecContext& ctx, std::size_t pos, std::size_t n);
    /// Replaces `n` characters at `pos` (TDes::Replace); bad `pos` or
    /// `pos + n` panics USER 10, overflow panics USER 11.
    void replace(const ExecContext& ctx, std::size_t pos, std::size_t n,
                 std::string_view s);
    /// Fills the descriptor to `n` copies of `c` (TDes::Fill + SetLength);
    /// overflow panics USER 11.
    void fill(const ExecContext& ctx, char c, std::size_t n);
    /// Sets the length (TDes::SetLength); beyond max panics USER 11.
    void setLength(const ExecContext& ctx, std::size_t n);

    /// Leftmost `n` characters (TDesC::Left); n > length panics USER 10.
    [[nodiscard]] std::string left(const ExecContext& ctx, std::size_t n) const;
    /// Rightmost `n` characters (TDesC::Right); n > length panics USER 10.
    [[nodiscard]] std::string right(const ExecContext& ctx, std::size_t n) const;
    /// `n` characters from `pos` (TDesC::Mid); out-of-bounds panics USER 10.
    [[nodiscard]] std::string mid(const ExecContext& ctx, std::size_t pos,
                                  std::size_t n) const;

private:
    void requireFits(const ExecContext& ctx, std::size_t newLength) const;
    void requirePos(const ExecContext& ctx, std::size_t pos, std::size_t limit) const;

    std::string data_;
    std::size_t max_;
};

}  // namespace symfail::symbos
