#include "symbos/descriptor.hpp"

#include <algorithm>

#include "symbos/kernel.hpp"

namespace symfail::symbos {

void Descriptor::requireFits(const ExecContext& ctx, std::size_t newLength) const {
    if (newLength > max_) {
        ctx.panic(kUserDesOverflow,
                  "descriptor operation grows length to " + std::to_string(newLength) +
                      " past maximum " + std::to_string(max_));
    }
}

void Descriptor::requirePos(const ExecContext& ctx, std::size_t pos,
                            std::size_t limit) const {
    if (pos > limit) {
        ctx.panic(kUserDesIndexOutOfRange,
                  "descriptor position " + std::to_string(pos) + " out of bounds (limit " +
                      std::to_string(limit) + ")");
    }
}

void Descriptor::copy(const ExecContext& ctx, std::string_view s) {
    requireFits(ctx, s.size());
    data_.assign(s);
}

void Descriptor::append(const ExecContext& ctx, std::string_view s) {
    requireFits(ctx, data_.size() + s.size());
    data_.append(s);
}

void Descriptor::insert(const ExecContext& ctx, std::size_t pos, std::string_view s) {
    requirePos(ctx, pos, data_.size());
    requireFits(ctx, data_.size() + s.size());
    data_.insert(pos, s);
}

void Descriptor::erase(const ExecContext& ctx, std::size_t pos, std::size_t n) {
    requirePos(ctx, pos, data_.size());
    data_.erase(pos, std::min(n, data_.size() - pos));
}

void Descriptor::replace(const ExecContext& ctx, std::size_t pos, std::size_t n,
                         std::string_view s) {
    requirePos(ctx, pos, data_.size());
    requirePos(ctx, pos + n, data_.size());
    requireFits(ctx, data_.size() - n + s.size());
    data_.replace(pos, n, s);
}

void Descriptor::fill(const ExecContext& ctx, char c, std::size_t n) {
    requireFits(ctx, n);
    data_.assign(n, c);
}

void Descriptor::setLength(const ExecContext& ctx, std::size_t n) {
    requireFits(ctx, n);
    data_.resize(n, '\0');
}

std::string Descriptor::left(const ExecContext& ctx, std::size_t n) const {
    requirePos(ctx, n, data_.size());
    return data_.substr(0, n);
}

std::string Descriptor::right(const ExecContext& ctx, std::size_t n) const {
    requirePos(ctx, n, data_.size());
    return data_.substr(data_.size() - n);
}

std::string Descriptor::mid(const ExecContext& ctx, std::size_t pos, std::size_t n) const {
    requirePos(ctx, pos, data_.size());
    requirePos(ctx, pos + n, data_.size());
    return data_.substr(pos, n);
}

}  // namespace symfail::symbos
