#include "symbos/sysservers.hpp"

#include <algorithm>

namespace symfail::symbos {

std::string_view toString(ActivityKind k) {
    switch (k) {
        case ActivityKind::VoiceCall: return "voice-call";
        case ActivityKind::TextMessage: return "text-message";
        case ActivityKind::Bluetooth: return "bluetooth";
        case ActivityKind::Camera: return "camera";
        case ActivityKind::WebBrowsing: return "web-browsing";
    }
    return "?";
}

void AppArchServer::appStarted(const std::string& app) {
    if (!isRunning(app)) running_.push_back(app);
}

void AppArchServer::appStopped(const std::string& app) {
    running_.erase(std::remove(running_.begin(), running_.end(), app), running_.end());
}

bool AppArchServer::isRunning(std::string_view app) const {
    return std::any_of(running_.begin(), running_.end(),
                       [&](const std::string& a) { return a == app; });
}

void DbLogServer::record(const ActivityEvent& event) {
    if (event.kind != ActivityKind::VoiceCall && event.kind != ActivityKind::TextMessage) {
        return;
    }
    events_.push_back(event);
    while (events_.size() > capacity_) events_.pop_front();
}

std::vector<ActivityEvent> DbLogServer::eventsSince(sim::TimePoint since) const {
    std::vector<ActivityEvent> out;
    for (const auto& e : events_) {
        if (e.time >= since) out.push_back(e);
    }
    return out;
}

void SystemAgentServer::setBattery(int percent, bool charging) {
    const bool wasLow = batteryLow();
    percent_ = percent;
    charging_ = charging;
    if (!wasLow && batteryLow()) {
        for (const auto& hook : hooks_) hook();
    }
}

}  // namespace symfail::symbos
