#include "symbos/timer.hpp"

#include "symbos/err.hpp"

namespace symfail::symbos {

void RTimer::after(const ExecContext& ctx, sim::Duration delay) {
    arm(ctx, ctx.now() + delay);
}

void RTimer::at(const ExecContext& ctx, sim::TimePoint when) {
    arm(ctx, when);
}

void RTimer::arm(const ExecContext& ctx, sim::TimePoint when) {
    if (outstanding_) {
        ctx.panic(kCBaseTimerOutstanding,
                  "timer event requested while one is already outstanding");
    }
    outstanding_ = true;
    client_->setActive();
    const sim::Duration delay = when - simulator_->now();
    pending_ = simulator_->scheduleAfter(delay, "symbos.timer", [this]() {
        outstanding_ = false;
        pending_ = {};
        if (client_->detached()) return;  // process torn down meanwhile
        client_->scheduler().complete(*client_, KErrNone);
    });
}

void RTimer::cancel() {
    if (!outstanding_) return;
    outstanding_ = false;
    if (pending_.valid()) {
        simulator_->cancel(pending_);
        pending_ = {};
    }
}

}  // namespace symfail::symbos
