// Per-process heap model.
//
// Symbian phones are memory-constrained, and the paper identifies heap
// mismanagement as a principal failure cause.  This model tracks live
// allocation cells so that tests and examples can assert leak-freedom of
// the cleanup-stack and two-phase-construction protocols, and supports the
// deterministic allocation-failure injection of Symbian's __UHEAP_FAILNEXT
// debug facility (an allocation failure *leaves* with KErrNoMemory).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>

namespace symfail::symbos {

class ExecContext;

/// Heap cell handle; 0 is never a valid cell.
using HeapCell = std::uint64_t;

/// Allocation tracker with failure injection.
class HeapModel {
public:
    /// Allocates a cell of `size` bytes; leaves with KErrNoMemory when a
    /// scheduled failure triggers or the configured capacity is exceeded.
    HeapCell allocL(const ExecContext& ctx, std::size_t size);

    /// Frees a cell; freeing an unknown or already-freed cell is a no-op
    /// that increments the double-free counter (real double frees corrupt
    /// the heap silently; the counter lets tests detect them).
    void free(HeapCell cell);

    [[nodiscard]] bool live(HeapCell cell) const { return cells_.contains(cell); }
    [[nodiscard]] std::size_t liveCount() const { return cells_.size(); }
    [[nodiscard]] std::size_t bytesInUse() const { return bytesInUse_; }
    [[nodiscard]] std::uint64_t doubleFrees() const { return doubleFrees_; }
    [[nodiscard]] std::uint64_t totalAllocs() const { return totalAllocs_; }

    /// The next `after`-th allocation leaves with KErrNoMemory
    /// (__UHEAP_FAILNEXT; after == 1 fails the very next allocation).
    void failNext(std::uint64_t after = 1) { failCountdown_ = after; }

    /// Caps total bytes; further allocations leave with KErrNoMemory.
    void setCapacity(std::size_t bytes) { capacity_ = bytes; }

private:
    std::unordered_map<HeapCell, std::size_t> cells_;
    HeapCell next_{1};
    std::size_t bytesInUse_{0};
    std::size_t capacity_{SIZE_MAX};
    std::uint64_t failCountdown_{0};
    std::uint64_t doubleFrees_{0};
    std::uint64_t totalAllocs_{0};
};

}  // namespace symfail::symbos
