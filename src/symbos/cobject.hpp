// Reference-counted kernel-side object model (Symbian's CObject).
//
// CObjects are shared via open/close reference counting; destroying one
// whose access count is still nonzero panics with E32USER-CBase 33.
#pragma once

#include <string>

namespace symfail::symbos {

class ExecContext;

/// Reference-counted object.  Access count starts at zero; `open` and
/// `close` adjust it; `destroy` checks the invariant.
class CObjectModel {
public:
    explicit CObjectModel(std::string name) : name_{std::move(name)} {}

    void open() { ++accessCount_; }

    /// Decrements the access count; returns true when it reached zero and
    /// the object may be destroyed.  Closing below zero is clamped (the
    /// real CObject asserts in debug builds only).
    bool close();

    /// Verifies the object is destroyable; a nonzero access count panics
    /// with E32USER-CBase 33.  Call before deleting the object.
    void destroyCheck(const ExecContext& ctx) const;

    [[nodiscard]] int accessCount() const { return accessCount_; }
    [[nodiscard]] const std::string& name() const { return name_; }

private:
    std::string name_;
    int accessCount_{0};
};

}  // namespace symfail::symbos
