#include "symbos/cobject.hpp"

#include "symbos/kernel.hpp"

namespace symfail::symbos {

bool CObjectModel::close() {
    if (accessCount_ > 0) --accessCount_;
    return accessCount_ == 0;
}

void CObjectModel::destroyCheck(const ExecContext& ctx) const {
    if (accessCount_ != 0) {
        ctx.panic(kCBaseObjectRefCount,
                  "CObject '" + name_ + "' destroyed with access count " +
                      std::to_string(accessCount_));
    }
}

}  // namespace symfail::symbos
