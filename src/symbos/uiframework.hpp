// Application-framework components whose misuse panics — the app-level
// panic categories of Table 2.
//
// The paper observes that these panics (EIKON-LISTBOX, EIKCOCTL,
// MMFAudioClient) terminate only the offending application and never
// escalate to a device-level failure, demonstrating the OS's resilience to
// application faults.
#pragma once

#include <cstddef>
#include <optional>

namespace symfail::symbos {

class ExecContext;

/// Eikon listbox control (EIKON-LISTBOX panics).
class ListboxModel {
public:
    /// Attaches the listbox to a view.
    void setView() { hasView_ = true; }
    void setItemCount(std::size_t n);

    /// Selects the current item (panics EIKON-LISTBOX 3 on an invalid
    /// index).
    void setCurrentItemIndex(const ExecContext& ctx, std::size_t index);

    /// Draws the listbox (panics EIKON-LISTBOX 5 when no view is defined).
    void draw(const ExecContext& ctx) const;

    [[nodiscard]] std::optional<std::size_t> currentItem() const { return current_; }

private:
    bool hasView_{false};
    std::size_t itemCount_{0};
    std::optional<std::size_t> current_;
};

/// Eikon text editor control ("edwin"; EIKCOCTL panics).
class EdwinModel {
public:
    /// Marks the inline-editing state corrupt (the fault).
    void corruptInlineState() { corrupt_ = true; }

    /// Performs an inline edit (panics EIKCOCTL 70 on corrupt state).
    void inlineEdit(const ExecContext& ctx);

    [[nodiscard]] std::size_t editCount() const { return edits_; }

private:
    bool corrupt_{false};
    std::size_t edits_{0};
};

/// Multimedia framework audio client (MMFAudioClient panics).
class AudioClientModel {
public:
    /// Valid volume range is 0..9; a value of 10 or more panics
    /// MMFAudioClient 4 (as Table 2 documents for SetVolume(TInt)).
    void setVolume(const ExecContext& ctx, int volume);

    [[nodiscard]] int volume() const { return volume_; }

private:
    int volume_{5};
};

}  // namespace symfail::symbos
