// The Symbian system servers the failure logger reads from:
//
//   * Application Architecture Server — the registry of running
//     applications (the logger's Running Applications Detector polls it);
//   * Database Log Server — the phone activity database: voice calls and
//     text messages, the only activities Symbian's log database registers
//     (the logger's Log Engine reads it);
//   * System Agent Server — battery status (the logger's Power Manager
//     reads it to tell low-battery shutdowns from failures).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "simkernel/time.hpp"

namespace symfail::symbos {

/// Phone activity categories.  Only VoiceCall and TextMessage are recorded
/// by the Database Log Server (matching the real phone's log database);
/// the others exist on the device but are invisible to the logger.
enum class ActivityKind : std::uint8_t {
    VoiceCall,
    TextMessage,
    Bluetooth,
    Camera,
    WebBrowsing,
};

[[nodiscard]] std::string_view toString(ActivityKind k);

/// One row in the activity database.
struct ActivityEvent {
    sim::TimePoint time;
    ActivityKind kind{ActivityKind::VoiceCall};
    bool incoming{false};
    bool isStart{true};  ///< start-of-activity vs end-of-activity row
};

/// Application Architecture Server: running-application registry.
class AppArchServer {
public:
    void appStarted(const std::string& app);
    void appStopped(const std::string& app);
    [[nodiscard]] const std::vector<std::string>& running() const { return running_; }
    [[nodiscard]] bool isRunning(std::string_view app) const;
    /// Device power-off: everything stops.
    void reset() { running_.clear(); }

private:
    std::vector<std::string> running_;
};

/// Database Log Server: persistent phone activity log (survives reboots,
/// like the real phone's log database).
class DbLogServer {
public:
    /// Records an activity row; rows for kinds the real database does not
    /// register (Bluetooth, Camera, WebBrowsing) are ignored, mirroring
    /// the logger's limited visibility.
    void record(const ActivityEvent& event);

    [[nodiscard]] const std::deque<ActivityEvent>& events() const { return events_; }
    /// Rows at or after `since`, for incremental collection.
    [[nodiscard]] std::vector<ActivityEvent> eventsSince(sim::TimePoint since) const;
    /// Bounds memory like the phone's rolling log database.
    void setCapacity(std::size_t maxRows) { capacity_ = maxRows; }

private:
    std::deque<ActivityEvent> events_;
    std::size_t capacity_{4096};
};

/// System Agent Server: battery and charger status.
class SystemAgentServer {
public:
    using LowBatteryHook = std::function<void()>;

    void setBattery(int percent, bool charging);
    [[nodiscard]] int batteryPercent() const { return percent_; }
    [[nodiscard]] bool charging() const { return charging_; }
    [[nodiscard]] bool batteryLow() const { return percent_ <= lowThreshold_; }

    /// Invoked when the battery level crosses the low threshold downwards.
    void addLowBatteryHook(LowBatteryHook hook) { hooks_.push_back(std::move(hook)); }
    void setLowThreshold(int percent) { lowThreshold_ = percent; }

private:
    int percent_{100};
    bool charging_{false};
    int lowThreshold_{3};
    std::vector<LowBatteryHook> hooks_;
};

}  // namespace symfail::symbos
