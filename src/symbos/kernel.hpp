// The Symbian OS kernel model.
//
// Symbian is a hard real-time microkernel: all system services run as
// server processes, clients talk to them via kernel message passing, and a
// non-recoverable error in any component is signalled to the kernel as a
// *panic*.  The kernel then applies its recovery policy: terminate the
// offending process, or reboot the device when the panicking component is a
// core application (Phone.app, the message server) or kernel-critical.
//
// This model reproduces those mechanisms functionally.  Application and
// system code runs inside `runInProcess`, which provides an `ExecContext`
// handle to kernel services.  Every panic path in the model (bad handles,
// descriptor overflows, stray signals, …) throws a `PanicSignal` that the
// kernel catches at the `runInProcess` boundary, records, reports to
// subscribed panic hooks (the paper's logger subscribes here, standing in
// for Symbian's RDebug facility), and resolves per the recovery policy.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "simkernel/simulator.hpp"
#include "simkernel/time.hpp"
#include "symbos/panic.hpp"

namespace symfail::symbos {

class Kernel;
class ActiveScheduler;
class CleanupStack;
class HeapModel;

/// Process identifier; 0 is never a valid id.
using ProcessId = std::uint32_t;

/// How the kernel treats a process when it panics.
enum class ProcessKind : std::uint8_t {
    UserApp,         ///< Third-party/user application: terminated, device survives.
    SystemServer,    ///< System server: terminated; device survives but may degrade.
    UiServer,        ///< Window/UI pipeline server: its death freezes the device.
    CoreApp,         ///< Core application (Phone.app, message server): kernel reboots.
    KernelCritical,  ///< Kernel-side component: kernel reboots.
};

[[nodiscard]] std::string_view toString(ProcessKind k);

/// Why a process was torn down.
enum class TerminationReason : std::uint8_t {
    Panicked,
    Killed,          ///< Explicitly killed (e.g. app closed by the user).
    DeviceShutdown,  ///< Device powering off; all processes die.
};

/// Why the kernel asked the device layer to restart/halt.
enum class KernelAction : std::uint8_t {
    RebootDevice,  ///< Self-shutdown followed by automatic restart.
    FreezeDevice,  ///< UI pipeline dead: device stops responding.
};

/// A recorded panic occurrence (kernel-side ground truth; also what panic
/// hooks receive).  Beyond the identity fields, the kernel snapshots the
/// panicking process's execution context at delivery time — the raw
/// material for structured crash dumps (crash/dump.hpp).
struct PanicEvent {
    sim::TimePoint time;
    PanicId id;
    ProcessId pid{0};
    std::string processName;
    std::string diagnostic;
    // Capture context (filled by deliverPanic before hooks run).
    ProcessKind kind{ProcessKind::UserApp};
    std::size_t cleanupDepth{0};
    bool trapActive{false};
    std::size_t schedulerAoCount{0};
    std::uint64_t heapLiveCells{0};
    std::uint64_t heapBytesInUse{0};
    std::uint64_t heapTotalAllocs{0};
};

/// Thrown by model code to signal a panic; caught at the kernel boundary.
/// Application code never catches this (mirrors real panics, which are not
/// catchable in-process).
struct PanicSignal {
    PanicId id;
    std::string diagnostic;
};

/// Thrown by `leave`; the model's equivalent of User::Leave().
struct LeaveError {
    int code;
};

/// Per-call handle through which model code reaches kernel services.
/// Only valid during the `runInProcess` invocation that created it.
class ExecContext {
public:
    [[nodiscard]] Kernel& kernel() const { return *kernel_; }
    [[nodiscard]] ProcessId pid() const { return pid_; }
    [[nodiscard]] std::string_view processName() const;
    [[nodiscard]] sim::TimePoint now() const;

    /// The calling process's cleanup stack.
    [[nodiscard]] CleanupStack& cleanupStack() const;

    /// The calling process's heap model.
    [[nodiscard]] HeapModel& heap() const;

    /// Raises a panic in the current process; does not return.
    [[noreturn]] void panic(PanicId id, std::string diagnostic) const;

    /// Leaves with an error code (Symbian's User::Leave).  If no trap is
    /// active, the kernel converts this to an E32USER-CBase 69 panic.
    [[noreturn]] void leave(int code) const;

private:
    friend class Kernel;
    ExecContext(Kernel& kernel, ProcessId pid) : kernel_{&kernel}, pid_{pid} {}
    Kernel* kernel_;
    ProcessId pid_;
};

/// Kernel-side object index: maps raw handle numbers to kernel objects.
/// Looking up an unknown handle from the executive path raises KERN-EXEC 0;
/// asking the kernel *server* to close an unknown handle raises KERN-SVR 0.
class ObjectIndex {
public:
    /// Handle numbers; 0 is never valid.
    using Handle = std::int32_t;

    /// Creates a kernel object owned by the calling process.
    Handle open(const ExecContext& ctx, std::string name);

    /// Executive-path lookup; panics with KERN-EXEC 0 when absent.
    [[nodiscard]] const std::string& lookupName(const ExecContext& ctx, Handle h) const;

    /// Kernel-server close; panics with KERN-SVR 0 when absent.
    void close(const ExecContext& ctx, Handle h);

    [[nodiscard]] bool contains(Handle h) const { return objects_.contains(h); }
    [[nodiscard]] std::size_t size() const { return objects_.size(); }

    /// Drops every object owned by `pid` (process teardown).
    void dropOwnedBy(ProcessId pid);

private:
    struct Entry {
        std::string name;
        ProcessId owner;
    };
    std::unordered_map<Handle, Entry> objects_;
    Handle next_{1};
};

/// The kernel.  One instance per simulated phone; survives reboots (the
/// device layer calls `shutdownAll` on power-off and re-creates processes
/// on boot, as firmware does).
class Kernel {
public:
    struct Config {
        /// ViewSrv watchdog: a dispatch monopolizing the active scheduler
        /// longer than this, in a process with a registered view, panics
        /// with ViewSrv 11.
        sim::Duration viewSrvTimeout = sim::Duration::seconds(10);
    };

    explicit Kernel(sim::Simulator& simulator);
    Kernel(sim::Simulator& simulator, Config config);
    ~Kernel();
    Kernel(const Kernel&) = delete;
    Kernel& operator=(const Kernel&) = delete;

    [[nodiscard]] sim::Simulator& simulator() { return *simulator_; }
    [[nodiscard]] const Config& config() const { return config_; }

    /// Trace track this kernel's events land on (the owning phone's track;
    /// the device layer sets it once at construction).  Track 0 ("sim") is
    /// the fallback for kernels nobody claimed.
    void setTraceTrack(std::uint32_t track) { traceTrack_ = track; }
    [[nodiscard]] std::uint32_t traceTrack() const { return traceTrack_; }

    // -- Process lifecycle ------------------------------------------------

    ProcessId createProcess(std::string name, ProcessKind kind);
    /// Terminates a process without a panic (user closed the app, …).
    void killProcess(ProcessId pid, TerminationReason reason);
    [[nodiscard]] bool alive(ProcessId pid) const;
    [[nodiscard]] std::string_view processName(ProcessId pid) const;
    [[nodiscard]] ProcessKind processKind(ProcessId pid) const;
    /// Names of all live processes.
    [[nodiscard]] std::vector<std::string> liveProcessNames() const;

    /// Tears down every process (device power-off).  Termination hooks run
    /// with reason DeviceShutdown.
    void shutdownAll();

    /// Suspends all scheduling (a frozen device): `runInProcess` becomes a
    /// no-op, so active objects stop dispatching and periodic services
    /// (like the logger's heartbeat) go quiet — which is precisely the
    /// signal freeze detection relies on.
    void setSuspended(bool suspended) { suspended_ = suspended; }
    [[nodiscard]] bool suspended() const { return suspended_; }

    // -- Running code -----------------------------------------------------

    enum class RunOutcome : std::uint8_t { Completed, Panicked, NoSuchProcess };

    /// Runs `body` in the context of `pid`.  Panics and untrapped leaves
    /// are caught here, recorded, and resolved per the recovery policy.
    RunOutcome runInProcess(ProcessId pid, const std::function<void(ExecContext&)>& body);

    /// Raises a panic in `pid` from outside any `runInProcess` body (used
    /// by kernel-side services such as the ViewSrv watchdog).
    void raisePanic(ProcessId pid, PanicId id, std::string diagnostic);

    // -- Kernel services --------------------------------------------------

    [[nodiscard]] ObjectIndex& objectIndex() { return objectIndex_; }
    /// The active scheduler of a live process.
    [[nodiscard]] ActiveScheduler& schedulerOf(ProcessId pid);
    /// The heap model of a live process.  Fault planes use this to apply
    /// memory pressure to a victim process from outside it.
    [[nodiscard]] HeapModel& heapOf(ProcessId pid);

    /// ViewSrv: registers a view for a process, enabling the watchdog.
    void registerView(ProcessId pid);
    [[nodiscard]] bool hasView(ProcessId pid) const;
    /// Called by the active scheduler after each dispatch with its
    /// simulated execution cost; enforces the ViewSrv watchdog.
    void reportDispatchCost(ProcessId pid, sim::Duration cost);

    // -- Observation hooks --------------------------------------------------

    using PanicHook = std::function<void(const PanicEvent&)>;
    using TerminationHook =
        std::function<void(ProcessId, const std::string& name, TerminationReason)>;
    using ActionHook = std::function<void(KernelAction, const PanicEvent&)>;

    /// Subscribes to every panic (the RDebug stand-in the logger uses).
    void addPanicHook(PanicHook hook);
    void addTerminationHook(TerminationHook hook);
    /// Receives reboot/freeze requests resulting from critical panics; the
    /// device layer implements them.
    void setActionHandler(ActionHook handler);

    /// Every panic since construction or the last clear (ground truth).
    [[nodiscard]] const std::vector<PanicEvent>& panicLog() const { return panicLog_; }

    /// Approximate heap footprint of the kernel's process table and panic
    /// log; derived from container sizes, deterministic per campaign.
    [[nodiscard]] std::size_t approxMemoryBytes() const;
    void clearPanicLog() { panicLog_.clear(); }

private:
    struct Process;

    Process& processRef(ProcessId pid);
    [[nodiscard]] const Process& processRef(ProcessId pid) const;
    void terminate(Process& p, TerminationReason reason);
    void deliverPanic(ProcessId pid, const PanicId& id, std::string diagnostic);

    friend class ExecContext;

    sim::Simulator* simulator_;
    Config config_;
    std::uint32_t traceTrack_{0};
    std::unordered_map<ProcessId, std::unique_ptr<Process>> processes_;
    ProcessId nextPid_{1};
    ObjectIndex objectIndex_;
    std::vector<PanicHook> panicHooks_;
    std::vector<TerminationHook> terminationHooks_;
    ActionHook actionHandler_;
    std::vector<PanicEvent> panicLog_;
    bool suspended_{false};
};

}  // namespace symfail::symbos
