#include "symbos/kernel.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "symbos/active.hpp"
#include "symbos/cleanup.hpp"
#include "symbos/heap.hpp"

namespace symfail::symbos {

std::string_view toString(ProcessKind k) {
    switch (k) {
        case ProcessKind::UserApp: return "user-app";
        case ProcessKind::SystemServer: return "system-server";
        case ProcessKind::UiServer: return "ui-server";
        case ProcessKind::CoreApp: return "core-app";
        case ProcessKind::KernelCritical: return "kernel-critical";
    }
    return "?";
}

// ---------------------------------------------------------------------------
// Process record

struct Kernel::Process {
    ProcessId pid;
    std::string name;
    ProcessKind kind;
    bool alive{true};
    bool hasView{false};
    CleanupStack cleanup;
    HeapModel heap;
    std::unique_ptr<ActiveScheduler> scheduler;
};

// ---------------------------------------------------------------------------
// ExecContext

std::string_view ExecContext::processName() const {
    return kernel_->processName(pid_);
}

sim::TimePoint ExecContext::now() const {
    return kernel_->simulator().now();
}

CleanupStack& ExecContext::cleanupStack() const {
    return kernel_->processRef(pid_).cleanup;
}

void ExecContext::panic(PanicId id, std::string diagnostic) const {
    throw PanicSignal{id, std::move(diagnostic)};
}

void ExecContext::leave(int code) const {
    throw LeaveError{code};
}

// ---------------------------------------------------------------------------
// ObjectIndex

ObjectIndex::Handle ObjectIndex::open(const ExecContext& ctx, std::string name) {
    const Handle h = next_++;
    objects_.emplace(h, Entry{std::move(name), ctx.pid()});
    return h;
}

const std::string& ObjectIndex::lookupName(const ExecContext& ctx, Handle h) const {
    const auto it = objects_.find(h);
    if (it == objects_.end()) {
        ctx.panic(kKernExecBadHandle,
                  "object index lookup failed for raw handle " + std::to_string(h));
    }
    return it->second.name;
}

void ObjectIndex::close(const ExecContext& ctx, Handle h) {
    const auto it = objects_.find(h);
    if (it == objects_.end()) {
        ctx.panic(kKernSvrBadHandleClose,
                  "kernel server cannot close unknown handle " + std::to_string(h));
    }
    objects_.erase(it);
}

void ObjectIndex::dropOwnedBy(ProcessId pid) {
    for (auto it = objects_.begin(); it != objects_.end();) {
        if (it->second.owner == pid) {
            it = objects_.erase(it);
        } else {
            ++it;
        }
    }
}

// ---------------------------------------------------------------------------
// Kernel

Kernel::Kernel(sim::Simulator& simulator) : Kernel{simulator, Config{}} {}

Kernel::Kernel(sim::Simulator& simulator, Config config)
    : simulator_{&simulator}, config_{config} {}

Kernel::~Kernel() = default;

ProcessId Kernel::createProcess(std::string name, ProcessKind kind) {
    const ProcessId pid = nextPid_++;
    auto p = std::make_unique<Process>();
    p->pid = pid;
    p->name = std::move(name);
    p->kind = kind;
    p->scheduler = std::make_unique<ActiveScheduler>(*this, pid);
    processes_.emplace(pid, std::move(p));
    return pid;
}

Kernel::Process& Kernel::processRef(ProcessId pid) {
    const auto it = processes_.find(pid);
    if (it == processes_.end()) {
        throw std::logic_error("no such process: " + std::to_string(pid));
    }
    return *it->second;
}

const Kernel::Process& Kernel::processRef(ProcessId pid) const {
    const auto it = processes_.find(pid);
    if (it == processes_.end()) {
        throw std::logic_error("no such process: " + std::to_string(pid));
    }
    return *it->second;
}

void Kernel::killProcess(ProcessId pid, TerminationReason reason) {
    const auto it = processes_.find(pid);
    if (it == processes_.end() || !it->second->alive) return;
    terminate(*it->second, reason);
}

bool Kernel::alive(ProcessId pid) const {
    const auto it = processes_.find(pid);
    return it != processes_.end() && it->second->alive;
}

std::string_view Kernel::processName(ProcessId pid) const {
    return processRef(pid).name;
}

ProcessKind Kernel::processKind(ProcessId pid) const {
    return processRef(pid).kind;
}

std::vector<std::string> Kernel::liveProcessNames() const {
    std::vector<std::string> names;
    names.reserve(processes_.size());
    for (const auto& [pid, p] : processes_) {
        if (p->alive) names.push_back(p->name);
    }
    return names;
}

void Kernel::shutdownAll() {
    for (auto& [pid, p] : processes_) {
        if (p->alive) terminate(*p, TerminationReason::DeviceShutdown);
    }
    processes_.clear();
}

void Kernel::terminate(Process& p, TerminationReason reason) {
    p.alive = false;
    objectIndex_.dropOwnedBy(p.pid);
    for (const auto& hook : terminationHooks_) {
        hook(p.pid, p.name, reason);
    }
}

Kernel::RunOutcome Kernel::runInProcess(ProcessId pid,
                                        const std::function<void(ExecContext&)>& body) {
    if (suspended_) return RunOutcome::NoSuchProcess;
    const auto it = processes_.find(pid);
    if (it == processes_.end() || !it->second->alive) {
        return RunOutcome::NoSuchProcess;
    }
    ExecContext ctx{*this, pid};
    try {
        body(ctx);
        return RunOutcome::Completed;
    } catch (const PanicSignal& p) {
        deliverPanic(pid, p.id, p.diagnostic);
        return RunOutcome::Panicked;
    } catch (const LeaveError& l) {
        // An untrapped leave escaping a thread function: no trap handler was
        // installed, which Symbian reports as E32USER-CBase 69.
        deliverPanic(pid, kCBaseNoTrapHandler,
                     "untrapped leave with code " + std::to_string(l.code));
        return RunOutcome::Panicked;
    }
}

void Kernel::raisePanic(ProcessId pid, PanicId id, std::string diagnostic) {
    if (suspended_ || !alive(pid)) return;
    deliverPanic(pid, id, std::move(diagnostic));
}

void Kernel::deliverPanic(ProcessId pid, const PanicId& id, std::string diagnostic) {
    Process& p = processRef(pid);
    PanicEvent event{simulator_->now(), id, pid, p.name, std::move(diagnostic)};
    // Snapshot the execution context while the process is still intact —
    // the raw material for the logger's structured crash dumps.
    event.kind = p.kind;
    event.cleanupDepth = p.cleanup.depth();
    event.trapActive = p.cleanup.trapActive();
    event.schedulerAoCount = p.scheduler->registeredCount();
    event.heapLiveCells = p.heap.liveCount();
    event.heapBytesInUse = p.heap.bytesInUse();
    event.heapTotalAllocs = p.heap.totalAllocs();
    if (auto* trace = simulator_->traceSink()) {
        const std::string panicName = toString(id);
        const obs::TraceArg args[] = {
            {"panic", panicName},
            {"process", event.processName},
            {"kind", toString(p.kind)},
        };
        trace->instant(traceTrack_, "symbos", "panic", event.time, args);
    }
    panicLog_.push_back(event);
    for (const auto& hook : panicHooks_) {
        hook(event);
    }
    terminate(p, TerminationReason::Panicked);

    // Recovery policy: the kernel decides between letting the device
    // continue, rebooting it (core applications, kernel-critical servers)
    // and — for the UI pipeline — leaving it unresponsive.
    switch (p.kind) {
        case ProcessKind::UserApp:
        case ProcessKind::SystemServer:
            break;
        case ProcessKind::CoreApp:
        case ProcessKind::KernelCritical:
            if (actionHandler_) actionHandler_(KernelAction::RebootDevice, event);
            break;
        case ProcessKind::UiServer:
            if (actionHandler_) actionHandler_(KernelAction::FreezeDevice, event);
            break;
    }
}

ActiveScheduler& Kernel::schedulerOf(ProcessId pid) {
    return *processRef(pid).scheduler;
}

HeapModel& Kernel::heapOf(ProcessId pid) {
    return processRef(pid).heap;
}

void Kernel::registerView(ProcessId pid) {
    processRef(pid).hasView = true;
}

bool Kernel::hasView(ProcessId pid) const {
    const auto it = processes_.find(pid);
    return it != processes_.end() && it->second->hasView;
}

void Kernel::reportDispatchCost(ProcessId pid, sim::Duration cost) {
    if (!alive(pid)) return;
    if (hasView(pid) && cost > config_.viewSrvTimeout) {
        deliverPanic(pid, kViewSrvEventStarvation,
                     "active object monopolized the scheduler for " + cost.str());
    }
}

void Kernel::addPanicHook(PanicHook hook) {
    panicHooks_.push_back(std::move(hook));
}

void Kernel::addTerminationHook(TerminationHook hook) {
    terminationHooks_.push_back(std::move(hook));
}

void Kernel::setActionHandler(ActionHook handler) {
    actionHandler_ = std::move(handler);
}

HeapModel& ExecContext::heap() const {
    return kernel_->processRef(pid_).heap;
}

std::size_t Kernel::approxMemoryBytes() const {
    constexpr std::size_t hashNode = 3 * sizeof(void*);
    std::size_t total = sizeof *this;
    for (const auto& [pid, process] : processes_) {
        total += hashNode + sizeof(Process) + process->name.size();
        if (process->scheduler != nullptr) total += sizeof(ActiveScheduler);
    }
    for (const PanicEvent& event : panicLog_) {
        total += event.processName.size() + event.diagnostic.size();
    }
    total += panicLog_.capacity() * sizeof(PanicEvent);
    return total;
}

}  // namespace symfail::symbos
