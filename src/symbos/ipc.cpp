#include "symbos/ipc.hpp"

#include "symbos/err.hpp"

namespace symfail::symbos {

void Message::complete(const ExecContext& ctx, int code) {
    if (!attached_ || completed_) {
        ctx.panic(kUserNullMessageComplete,
                  "request completed through a null RMessagePtr (op " +
                      std::to_string(op_) + ")");
    }
    completed_ = true;
    result_ = code;
}

Server::Server(Kernel& kernel, ProcessId host, std::string name)
    : kernel_{&kernel}, host_{host}, name_{std::move(name)} {}

int Server::sendReceive(int op, std::string payload) {
    if (!kernel_->alive(host_)) return KErrServerTerminated;
    if (!handler_) return KErrNotSupported;
    if (auto* trace = kernel_->simulator().traceSink()) {
        const obs::TraceArg args[] = {{"server", name_}, {"op", op}};
        trace->instant(kernel_->traceTrack(), "symbos.ipc", "sendReceive",
                       kernel_->simulator().now(), args);
    }
    Message msg{op, std::move(payload)};
    const auto outcome = kernel_->runInProcess(host_, [&](ExecContext& ctx) {
        handler_(ctx, msg);
    });
    if (outcome != Kernel::RunOutcome::Completed) return KErrServerTerminated;
    ++served_;
    if (!msg.completed()) return KErrGeneral;
    return msg.result();
}

}  // namespace symfail::symbos
