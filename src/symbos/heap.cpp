#include "symbos/heap.hpp"

#include "symbos/err.hpp"
#include "symbos/kernel.hpp"

namespace symfail::symbos {

HeapCell HeapModel::allocL(const ExecContext& ctx, std::size_t size) {
    if (failCountdown_ > 0 && --failCountdown_ == 0) {
        ctx.leave(KErrNoMemory);
    }
    if (bytesInUse_ + size > capacity_) {
        ctx.leave(KErrNoMemory);
    }
    const HeapCell cell = next_++;
    cells_.emplace(cell, size);
    bytesInUse_ += size;
    ++totalAllocs_;
    return cell;
}

void HeapModel::free(HeapCell cell) {
    const auto it = cells_.find(cell);
    if (it == cells_.end()) {
        ++doubleFrees_;
        return;
    }
    bytesInUse_ -= it->second;
    cells_.erase(it);
}

}  // namespace symfail::symbos
