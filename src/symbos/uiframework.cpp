#include "symbos/uiframework.hpp"

#include <string>

#include "symbos/kernel.hpp"

namespace symfail::symbos {

void ListboxModel::setItemCount(std::size_t n) {
    itemCount_ = n;
    if (current_ && *current_ >= n) current_.reset();
}

void ListboxModel::setCurrentItemIndex(const ExecContext& ctx, std::size_t index) {
    if (index >= itemCount_) {
        ctx.panic(kListboxBadItemIndex,
                  "invalid Current Item Index " + std::to_string(index) + " (item count " +
                      std::to_string(itemCount_) + ")");
    }
    current_ = index;
}

void ListboxModel::draw(const ExecContext& ctx) const {
    if (!hasView_) {
        ctx.panic(kListboxNoView, "listbox drawn with no view defined");
    }
}

void EdwinModel::inlineEdit(const ExecContext& ctx) {
    if (corrupt_) {
        ctx.panic(kEikcoctlCorruptEdwin, "corrupt edwin state for inline editing");
    }
    ++edits_;
}

void AudioClientModel::setVolume(const ExecContext& ctx, int volume) {
    if (volume >= 10) {
        ctx.panic(kMmfAudioBadVolume,
                  "SetVolume(" + std::to_string(volume) + ") out of range");
    }
    volume_ = volume;
}

}  // namespace symfail::symbos
