// Symbian system-wide error codes (the subset the model uses).
//
// Symbian reports errors as negative integers ("leave codes"); KErrNone (0)
// means success.  These constants mirror e32std.h.
#pragma once

namespace symfail::symbos {

inline constexpr int KErrNone = 0;
inline constexpr int KErrNotFound = -1;
inline constexpr int KErrGeneral = -2;
inline constexpr int KErrCancel = -3;
inline constexpr int KErrNoMemory = -4;
inline constexpr int KErrNotSupported = -5;
inline constexpr int KErrArgument = -6;
inline constexpr int KErrBadHandle = -8;
inline constexpr int KErrOverflow = -9;
inline constexpr int KErrUnderflow = -10;
inline constexpr int KErrAlreadyExists = -11;
inline constexpr int KErrInUse = -14;
inline constexpr int KErrServerTerminated = -15;
inline constexpr int KErrDied = -13;
inline constexpr int KErrTimedOut = -33;

}  // namespace symfail::symbos
