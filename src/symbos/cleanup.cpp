#include "symbos/cleanup.hpp"

#include <utility>

#include "symbos/err.hpp"
#include "symbos/kernel.hpp"

namespace symfail::symbos {

void CleanupStack::pushL(const ExecContext& ctx, Op op) {
    if (!trapActive()) {
        ctx.panic(kCBaseNoTrapHandler,
                  "cleanup stack used with no trap handler installed");
    }
    items_.push_back(std::move(op));
}

std::size_t CleanupStack::frameDepth() const {
    const std::size_t mark = trapMarks_.empty() ? 0 : trapMarks_.back();
    return items_.size() - mark;
}

void CleanupStack::pop(const ExecContext& ctx, std::size_t n) {
    if (n > frameDepth()) {
        ctx.panic(kCBaseUndocumented92,
                  "cleanup stack pop underflows the current trap frame");
    }
    items_.resize(items_.size() - n);
}

void CleanupStack::popAndDestroy(const ExecContext& ctx, std::size_t n) {
    if (n > frameDepth()) {
        ctx.panic(kCBaseUndocumented92,
                  "cleanup stack pop-and-destroy underflows the current trap frame");
    }
    for (std::size_t i = 0; i < n; ++i) {
        Op op = std::move(items_.back());
        items_.pop_back();
        if (op) op();
    }
}

void CleanupStack::unwindTo(std::size_t mark) {
    while (items_.size() > mark) {
        Op op = std::move(items_.back());
        items_.pop_back();
        if (op) op();
    }
}

int trap(ExecContext& ctx, const std::function<void(ExecContext&)>& body) {
    CleanupStack& stack = ctx.cleanupStack();
    const std::size_t mark = stack.items_.size();
    stack.trapMarks_.push_back(mark);
    try {
        body(ctx);
    } catch (const LeaveError& leave) {
        stack.unwindTo(mark);
        stack.trapMarks_.pop_back();
        return leave.code;
    } catch (...) {
        // Panics (and anything else) propagate, but the trap frame must not
        // linger on the stack.
        stack.trapMarks_.pop_back();
        throw;
    }
    stack.trapMarks_.pop_back();
    if (stack.items_.size() != mark) {
        // Completing a trap with unbalanced pushes is a programming error;
        // modelled as the paper's (undocumented) E32USER-CBase 91.
        stack.unwindTo(mark);
        ctx.panic(kCBaseUndocumented91,
                  "trap completed with unbalanced cleanup stack");
    }
    return KErrNone;
}

}  // namespace symfail::symbos
