// Symbian OS panic taxonomy.
//
// A panic is a non-recoverable error condition signalled to the kernel by a
// user or system component.  It carries a *category* (a short string naming
// the signalling subsystem) and a *type* (an integer code within that
// category).  The kernel decides the recovery action — terminating the
// offending process or rebooting the device.
//
// The categories and types modelled here are exactly the twenty rows of
// Table 2 of the paper, together with the documentation strings the paper
// quotes from the Symbian OS documentation and the relative frequencies
// the study measured (used for calibration and paper-vs-measured reports).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace symfail::symbos {

/// Panic categories observed in the study (Table 2).
enum class PanicCategory : std::uint8_t {
    KernExec,        ///< KERN-EXEC: kernel executive panics.
    E32UserCBase,    ///< E32USER-CBase: active objects / cleanup stack / CBase.
    User,            ///< USER: descriptor and user-library panics.
    KernSvr,         ///< KERN-SVR: kernel server panics.
    ViewSrv,         ///< ViewSrv: view server responsiveness watchdog.
    EikonListbox,    ///< EIKON-LISTBOX: UI listbox framework.
    Eikcoctl,        ///< EIKCOCTL: UI control framework (edwin editor).
    PhoneApp,        ///< Phone.app: the core telephony application.
    MsgsClient,      ///< MSGS Client: messaging server client library.
    MmfAudioClient,  ///< MMFAudioClient: multimedia framework audio client.
};

/// Number of distinct categories (for array sizing).
inline constexpr std::size_t kPanicCategoryCount = 10;

[[nodiscard]] std::string_view toString(PanicCategory c);
/// Parses a category string as written in log files; nullopt on unknown
/// input.  Log parsers use this form: a corrupted category string is a
/// parse anomaly to count, never an exception to propagate.
[[nodiscard]] std::optional<PanicCategory> parsePanicCategory(std::string_view s);
/// Parses a category string; throws std::invalid_argument on unknown
/// input.  For call sites where an unknown category is a programming
/// error, not data damage.
[[nodiscard]] PanicCategory panicCategoryFromString(std::string_view s);

/// A (category, type) pair fully identifying a panic.
struct PanicId {
    PanicCategory category{PanicCategory::KernExec};
    int type{0};
    friend bool operator==(PanicId, PanicId) = default;
    friend auto operator<=>(PanicId, PanicId) = default;
};

[[nodiscard]] std::string toString(PanicId id);

// Well-known panics used throughout the model (names follow the Symbian
// documentation's informal descriptions).
inline constexpr PanicId kKernExecBadHandle{PanicCategory::KernExec, 0};
inline constexpr PanicId kKernExecAccessViolation{PanicCategory::KernExec, 3};
inline constexpr PanicId kCBaseTimerOutstanding{PanicCategory::E32UserCBase, 15};
inline constexpr PanicId kCBaseObjectRefCount{PanicCategory::E32UserCBase, 33};
inline constexpr PanicId kCBaseStraySignal{PanicCategory::E32UserCBase, 46};
inline constexpr PanicId kCBaseSchedulerError{PanicCategory::E32UserCBase, 47};
inline constexpr PanicId kCBaseNoTrapHandler{PanicCategory::E32UserCBase, 69};
inline constexpr PanicId kCBaseUndocumented91{PanicCategory::E32UserCBase, 91};
inline constexpr PanicId kCBaseUndocumented92{PanicCategory::E32UserCBase, 92};
inline constexpr PanicId kUserDesIndexOutOfRange{PanicCategory::User, 10};
inline constexpr PanicId kUserDesOverflow{PanicCategory::User, 11};
inline constexpr PanicId kUserNullMessageComplete{PanicCategory::User, 70};
inline constexpr PanicId kKernSvrBadHandleClose{PanicCategory::KernSvr, 0};
inline constexpr PanicId kViewSrvEventStarvation{PanicCategory::ViewSrv, 11};
inline constexpr PanicId kListboxBadItemIndex{PanicCategory::EikonListbox, 3};
inline constexpr PanicId kListboxNoView{PanicCategory::EikonListbox, 5};
inline constexpr PanicId kPhoneAppInternal{PanicCategory::PhoneApp, 2};
inline constexpr PanicId kEikcoctlCorruptEdwin{PanicCategory::Eikcoctl, 70};
inline constexpr PanicId kMsgsClientWriteFailed{PanicCategory::MsgsClient, 3};
inline constexpr PanicId kMmfAudioBadVolume{PanicCategory::MmfAudioClient, 4};

/// Documentation text for a panic (the paper's Table 2 "meaning" column);
/// returns "Not documented" for codes without public documentation.
[[nodiscard]] std::string_view panicMeaning(PanicId id);

/// One row of the paper's Table 2.
struct PaperPanicRow {
    PanicId id;
    double paperPercent;  ///< Relative frequency (%) measured by the study.
};

/// The reconstructed Table 2: twenty rows summing to ~100%.  The paper's
/// total panic population is ~396 events (0.25% == one event).
[[nodiscard]] std::span<const PaperPanicRow> paperPanicTable();

/// Total panic count behind Table 2's percentages.
inline constexpr int kPaperPanicPopulation = 396;

}  // namespace symfail::symbos

template <>
struct std::hash<symfail::symbos::PanicId> {
    std::size_t operator()(const symfail::symbos::PanicId& p) const noexcept {
        return (static_cast<std::size_t>(p.category) << 16) ^
               static_cast<std::size_t>(p.type);
    }
};
