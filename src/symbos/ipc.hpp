// Client/server message passing — the microkernel's service access path.
//
// All Symbian system services are servers; clients send messages through
// the kernel and the server completes them.  The model reproduces:
//   * completing a request through a null message pointer  -> USER 70
//   * sending to a dead server                              -> KErrServerTerminated
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "symbos/kernel.hpp"

namespace symfail::symbos {

/// A request in flight from a client to a server (RMessage).  Handlers
/// receive a reference and must call `complete` exactly once.
class Message {
public:
    [[nodiscard]] int op() const { return op_; }
    [[nodiscard]] const std::string& payload() const { return payload_; }
    [[nodiscard]] bool completed() const { return completed_; }
    [[nodiscard]] int result() const { return result_; }

    /// Completes the request (RMessagePtr2::Complete).  Completing through
    /// a null message pointer — modelled as a second completion or a
    /// completion of a detached message — panics with USER 70.
    void complete(const ExecContext& ctx, int code);

    /// Detaches the message from its request, leaving a null RMessagePtr;
    /// used by fault injection to reproduce the USER 70 path.
    void detach() { attached_ = false; }

    /// Builds a message that was never attached to a request — a null
    /// RMessagePtr.  Completing it panics USER 70.
    [[nodiscard]] static Message orphan(int op) {
        Message m{op, {}};
        m.attached_ = false;
        return m;
    }

private:
    friend class Server;
    Message(int op, std::string payload) : op_{op}, payload_{std::move(payload)} {}
    int op_;
    std::string payload_;
    bool completed_{false};
    bool attached_{true};
    int result_{0};
};

/// A server process endpoint.  `sendReceive` runs the handler in the host
/// process's context (kernel message passing is modelled as a synchronous
/// kernel-mediated call, which matches Symbian's blocking SendReceive).
class Server {
public:
    using Handler = std::function<void(ExecContext&, Message&)>;

    Server(Kernel& kernel, ProcessId host, std::string name);

    void setHandler(Handler handler) { handler_ = std::move(handler); }

    /// Client call.  Returns the completion code, KErrServerTerminated if
    /// the host process is dead, or KErrGeneral if the handler returned
    /// without completing the message (a hung request, surfaced as an
    /// error so the model stays synchronous).
    int sendReceive(int op, std::string payload = {});

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] ProcessId host() const { return host_; }
    [[nodiscard]] std::uint64_t messagesServed() const { return served_; }

private:
    Kernel* kernel_;
    ProcessId host_;
    std::string name_;
    Handler handler_;
    std::uint64_t served_{0};
};

}  // namespace symfail::symbos
