// Cleanup stack and trap/leave — Symbian's memory-safety mechanisms.
//
// Symbian code pushes references to heap objects onto a per-thread cleanup
// stack; when an exceptional condition makes a function "leave" (Symbian's
// lightweight exception, User::Leave), the trap harness unwinds the cleanup
// stack down to the trap mark, destroying everything pushed inside the trap
// and so preventing leaks.  The model reproduces the semantics, including
// the panics raised on misuse:
//   * using the cleanup stack with no trap handler installed
//       -> E32USER-CBase 69
//   * popping more items than were pushed inside the current trap
//       -> E32USER-CBase 92 (undocumented in the paper's Table 2; this
//         model assigns it the "cleanup stack underflow" misuse)
//   * leaving a trap with unbalanced pushes still on the stack
//       -> E32USER-CBase 91 (undocumented in the paper's Table 2; this
//         model assigns it the "unbalanced cleanup stack" misuse)
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace symfail::symbos {

class ExecContext;

/// Per-process cleanup stack.
class CleanupStack {
public:
    using Op = std::function<void()>;

    /// Pushes a cleanup operation.  Panics (E32USER-CBase 69) when no trap
    /// is active — the model's equivalent of a missing CTrapCleanup.
    void pushL(const ExecContext& ctx, Op op);

    /// Pops `n` items without running them.  Panics (E32USER-CBase 92) on
    /// underflow of the current trap frame.
    void pop(const ExecContext& ctx, std::size_t n = 1);

    /// Pops `n` items and runs their cleanup operations (newest first).
    /// Panics (E32USER-CBase 92) on underflow of the current trap frame.
    void popAndDestroy(const ExecContext& ctx, std::size_t n = 1);

    [[nodiscard]] bool trapActive() const { return !trapMarks_.empty(); }
    [[nodiscard]] std::size_t depth() const { return items_.size(); }

private:
    friend int trap(ExecContext& ctx, const std::function<void(ExecContext&)>& body);

    /// Items pushed within the current trap frame.
    [[nodiscard]] std::size_t frameDepth() const;
    /// Destroys items above `mark` (newest first).
    void unwindTo(std::size_t mark);

    std::vector<Op> items_;
    std::vector<std::size_t> trapMarks_;
};

/// Runs `body` under a trap harness (Symbian's TRAP macro).  Returns
/// KErrNone on normal completion, or the leave code when `body` leaves; in
/// the latter case everything pushed on the cleanup stack inside the trap
/// has been destroyed.  A body completing with unbalanced cleanup pushes
/// panics with E32USER-CBase 91.
int trap(ExecContext& ctx, const std::function<void(ExecContext&)>& body);

}  // namespace symfail::symbos
