#include "symbos/panic.hpp"

#include <array>
#include <stdexcept>

namespace symfail::symbos {

std::string_view toString(PanicCategory c) {
    switch (c) {
        case PanicCategory::KernExec: return "KERN-EXEC";
        case PanicCategory::E32UserCBase: return "E32USER-CBase";
        case PanicCategory::User: return "USER";
        case PanicCategory::KernSvr: return "KERN-SVR";
        case PanicCategory::ViewSrv: return "ViewSrv";
        case PanicCategory::EikonListbox: return "EIKON-LISTBOX";
        case PanicCategory::Eikcoctl: return "EIKCOCTL";
        case PanicCategory::PhoneApp: return "Phone.app";
        case PanicCategory::MsgsClient: return "MSGS-Client";
        case PanicCategory::MmfAudioClient: return "MMFAudioClient";
    }
    return "?";
}

std::optional<PanicCategory> parsePanicCategory(std::string_view s) {
    for (std::size_t i = 0; i < kPanicCategoryCount; ++i) {
        const auto c = static_cast<PanicCategory>(i);
        if (toString(c) == s) return c;
    }
    return std::nullopt;
}

PanicCategory panicCategoryFromString(std::string_view s) {
    if (const auto c = parsePanicCategory(s)) return *c;
    throw std::invalid_argument("unknown panic category: " + std::string{s});
}

std::string toString(PanicId id) {
    return std::string{toString(id.category)} + " " + std::to_string(id.type);
}

std::string_view panicMeaning(PanicId id) {
    if (id == kKernExecBadHandle) {
        return "Raised when the Kernel Executive cannot find an object in the object "
               "index for the current process or thread using the specified object "
               "index number (the raw handle number).";
    }
    if (id == kKernExecAccessViolation) {
        return "Raised when an unhandled exception occurs. Exceptions have many "
               "causes, but the most common are access violations caused, for "
               "example, by dereferencing NULL.";
    }
    if (id == kCBaseTimerOutstanding) {
        return "Raised when a timer event is requested from an asynchronous timer "
               "service, an RTimer, and a timer event is already outstanding.";
    }
    if (id == kCBaseObjectRefCount) {
        return "Raised by the destructor of a CObject, if an attempt is made to "
               "delete the CObject when the reference count is not zero.";
    }
    if (id == kCBaseStraySignal) {
        return "Raised by an active scheduler, a CActiveScheduler. It is caused by "
               "a stray signal.";
    }
    if (id == kCBaseSchedulerError) {
        return "Raised by the Error() virtual member function of an active "
               "scheduler, called when an active object's RunL() function leaves.";
    }
    if (id == kCBaseNoTrapHandler) {
        return "Raised if no trap handler has been installed. In practice, this "
               "occurs if CTrapCleanup::New() has not been called before using the "
               "cleanup stack.";
    }
    if (id == kUserDesIndexOutOfRange) {
        return "Raised when the position value passed to a 16-bit variant "
               "descriptor member function is out of bounds (Left(), Right(), "
               "Mid(), Insert(), Delete(), Replace()).";
    }
    if (id == kUserDesOverflow) {
        return "Raised when an operation that moves or copies data to a 16-bit "
               "variant descriptor causes the length of that descriptor to exceed "
               "its maximum length.";
    }
    if (id == kUserNullMessageComplete) {
        return "Raised when attempting to complete a client/server request and the "
               "RMessagePtr is null.";
    }
    if (id == kKernSvrBadHandleClose) {
        return "Raised by the Kernel Server when it attempts to close a kernel "
               "object in response to an RHandleBase::Close() request and the "
               "object represented by the handle cannot be found. The most likely "
               "cause is a corrupt handle.";
    }
    if (id == kViewSrvEventStarvation) {
        return "Occurs when one active object's event handler monopolizes the "
               "thread's active scheduler loop and the application's ViewSrv "
               "active object cannot respond in time.";
    }
    if (id == kListboxBadItemIndex) {
        return "Occurs when using a listbox object from the eikon framework and an "
               "invalid Current Item Index is specified.";
    }
    if (id == kListboxNoView) {
        return "Occurs when using a listbox object from the eikon framework and no "
               "view is defined to display the object.";
    }
    if (id == kEikcoctlCorruptEdwin) {
        return "Corrupt edwin state for inlining editing.";
    }
    if (id == kMsgsClientWriteFailed) {
        return "Failed to write data into asynchronous call descriptor to be "
               "passed back to client.";
    }
    if (id == kMmfAudioBadVolume) {
        return "Appears when the TInt value passed to SetVolume(TInt) gets 10 or "
               "more.";
    }
    return "Not documented";
}

std::span<const PaperPanicRow> paperPanicTable() {
    // Reconstructed from Table 2 of the paper; percentages sum to 100
    // (within rounding: each 0.25% is one of ~396 panic events).
    static constexpr std::array<PaperPanicRow, 20> kTable{{
        {kKernExecBadHandle, 6.31},
        {kKernExecAccessViolation, 56.31},
        {kCBaseTimerOutstanding, 0.51},
        {kCBaseObjectRefCount, 5.56},
        {kCBaseStraySignal, 0.76},
        {kCBaseSchedulerError, 0.25},
        {kCBaseNoTrapHandler, 10.10},
        {kCBaseUndocumented91, 0.51},
        {kCBaseUndocumented92, 0.76},
        {kUserDesIndexOutOfRange, 1.52},
        {kUserDesOverflow, 5.81},
        {kUserNullMessageComplete, 0.76},
        {kKernSvrBadHandleClose, 0.25},
        {kViewSrvEventStarvation, 2.53},
        {kListboxBadItemIndex, 0.25},
        {kListboxNoView, 0.76},
        {kPhoneAppInternal, 0.25},
        {kEikcoctlCorruptEdwin, 0.25},
        {kMsgsClientWriteFailed, 6.31},
        {kMmfAudioBadVolume, 0.25},
    }};
    return kTable;
}

}  // namespace symfail::symbos
