#include "experiment/stats.hpp"

#include <algorithm>
#include <cmath>

#include "simkernel/rng.hpp"

namespace symfail::experiment {
namespace {

/// Two-sided 95% critical values of the t distribution, df = 1..30.
constexpr double kT95[] = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
};

/// Mean of `samples` indexed through `pick` (identity for the plain mean).
double meanOf(std::span<const double> samples) {
    double total = 0.0;
    for (const double s : samples) total += s;
    return total / static_cast<double>(samples.size());
}

}  // namespace

double studentT95(std::size_t degreesOfFreedom) {
    if (degreesOfFreedom == 0) return 0.0;
    if (degreesOfFreedom <= std::size(kT95)) return kT95[degreesOfFreedom - 1];
    // Large-sample correction toward the normal quantile (Fisher's
    // expansion, accurate to ~1e-3 for df > 30).
    const double z = 1.959963985;
    const double df = static_cast<double>(degreesOfFreedom);
    return z + (z * z * z + z) / (4.0 * df) +
           (5.0 * z * z * z * z * z + 16.0 * z * z * z + 3.0 * z) / (96.0 * df * df);
}

SummaryStats summarize(std::span<const double> samples, std::uint64_t bootstrapSeed,
                       int bootstrapResamples) {
    SummaryStats stats;
    stats.n = samples.size();
    if (samples.empty()) return stats;

    stats.mean = meanOf(samples);
    stats.min = *std::min_element(samples.begin(), samples.end());
    stats.max = *std::max_element(samples.begin(), samples.end());
    stats.ciLow = stats.ciHigh = stats.mean;
    stats.bootstrapLow = stats.bootstrapHigh = stats.mean;
    if (samples.size() < 2) return stats;

    double ss = 0.0;
    for (const double s : samples) {
        const double d = s - stats.mean;
        ss += d * d;
    }
    stats.stddev = std::sqrt(ss / static_cast<double>(samples.size() - 1));

    const double half = studentT95(samples.size() - 1) * stats.stddev /
                        std::sqrt(static_cast<double>(samples.size()));
    stats.ciLow = stats.mean - half;
    stats.ciHigh = stats.mean + half;

    if (bootstrapResamples > 0) {
        sim::Rng rng{bootstrapSeed};
        std::vector<double> means;
        means.reserve(static_cast<std::size_t>(bootstrapResamples));
        const auto count = static_cast<std::int64_t>(samples.size());
        for (int r = 0; r < bootstrapResamples; ++r) {
            double total = 0.0;
            for (std::size_t i = 0; i < samples.size(); ++i) {
                total += samples[static_cast<std::size_t>(rng.uniformInt(0, count - 1))];
            }
            means.push_back(total / static_cast<double>(samples.size()));
        }
        std::sort(means.begin(), means.end());
        // Percentile interval with nearest-rank indexing.
        const auto rank = [&](double q) {
            const auto idx = static_cast<std::size_t>(
                q * static_cast<double>(means.size() - 1) + 0.5);
            return means[std::min(idx, means.size() - 1)];
        };
        stats.bootstrapLow = rank(0.025);
        stats.bootstrapHigh = rank(0.975);
    }
    return stats;
}

}  // namespace symfail::experiment
