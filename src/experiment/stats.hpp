// Replication statistics: mean, sample stddev, and 95% confidence
// intervals for per-trial scalar metrics.
//
// Two interval constructions are reported side by side:
//   * Student-t — exact under normally distributed trial means; the
//     default headline interval.
//   * Bootstrap percentile — distribution-free; resamples the trials with
//     replacement (deterministically, from a derived seed) and takes the
//     2.5%/97.5% quantiles of the resampled means.  Cross-checking the
//     two guards against heavy-tailed metrics (rare-event counts on short
//     campaigns) where the t interval is optimistic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace symfail::experiment {

/// Summary of one scalar metric across N trials.
struct SummaryStats {
    std::size_t n{0};
    double mean{0.0};
    double stddev{0.0};  ///< Sample standard deviation (n-1 denominator).
    double min{0.0};
    double max{0.0};
    /// Student-t 95% CI for the mean; equals [mean, mean] when n < 2.
    double ciLow{0.0};
    double ciHigh{0.0};
    /// Bootstrap percentile 95% CI for the mean; equals [mean, mean] when
    /// n < 2 or resampling is disabled.
    double bootstrapLow{0.0};
    double bootstrapHigh{0.0};

    /// Half-width of the Student-t interval.
    [[nodiscard]] double halfWidth() const { return (ciHigh - ciLow) / 2.0; }
};

/// Two-sided 95% Student-t critical value for `degreesOfFreedom` >= 1
/// (tabulated to 30, then the large-sample approximation; converges to
/// the normal 1.96 quantile).
[[nodiscard]] double studentT95(std::size_t degreesOfFreedom);

/// Summarizes `samples`.  `bootstrapSeed` drives the resampler (derive it
/// from the sweep's master seed so summaries are reproducible);
/// `bootstrapResamples` <= 0 disables the bootstrap interval.
[[nodiscard]] SummaryStats summarize(std::span<const double> samples,
                                     std::uint64_t bootstrapSeed,
                                     int bootstrapResamples = 1000);

}  // namespace symfail::experiment
