// Work-stealing execution of an indexed task set.
//
// The experiment Runner has an embarrassingly parallel workload — hundreds
// of independent trials of very unequal cost (cells differ in fleet size
// and campaign length).  A static block split would leave workers idle
// behind the biggest cell, so each worker owns a deque of task indices and
// steals from the busiest sibling when its own runs dry.
//
// Determinism contract: the pool decides only *where* and *when* a task
// runs, never *what* it computes — tasks must depend solely on their index
// (the Runner derives every trial's RNG stream from its coordinates) and
// must write only to their own result slot.  Under that contract the
// output is byte-identical for any worker count, including 1 (which runs
// inline on the calling thread with no threads spawned at all).
#pragma once

#include <cstddef>
#include <functional>

namespace symfail::experiment {

/// Runs `task(0) .. task(taskCount-1)` across `workers` threads and blocks
/// until all complete.  `workers <= 1` executes inline.  Tasks must not
/// throw — wrap the body and capture failures in the result slot.
void runWorkStealing(std::size_t taskCount, int workers,
                     const std::function<void(std::size_t)>& task);

}  // namespace symfail::experiment
