#include "experiment/export.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "analysis/tables.hpp"
#include "obs/trace.hpp"  // appendJsonEscaped

namespace symfail::experiment {
namespace {

/// Shortest round-trippable rendering; stable across platforms for the
/// doubles this pipeline produces (finite, no signed zeros of interest).
std::string jsonNum(double value) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.10g", value);
    return std::string{buf};
}

void appendKey(std::string& out, std::string_view key) {
    out += '"';
    obs::appendJsonEscaped(out, key);
    out += "\":";
}

void appendCellParams(std::string& out, const Cell& cell) {
    out += "{";
    appendKey(out, "phones");
    out += std::to_string(cell.phones);
    out += ',';
    appendKey(out, "days");
    out += std::to_string(cell.days);
    out += ',';
    appendKey(out, "loss_pct");
    out += jsonNum(cell.lossPct);
    out += ',';
    appendKey(out, "dup_pct");
    out += jsonNum(cell.dupPct);
    out += ',';
    appendKey(out, "reorder_pct");
    out += jsonNum(cell.reorderPct);
    out += ',';
    appendKey(out, "outage_day");
    out += std::to_string(cell.outageDay);
    out += ',';
    appendKey(out, "outage_days");
    out += std::to_string(cell.outageDays);
    out += ',';
    appendKey(out, "heartbeat_seconds");
    out += jsonNum(cell.heartbeatSeconds);
    out += ',';
    appendKey(out, "self_shutdown_threshold_seconds");
    out += jsonNum(cell.selfShutdownThresholdSeconds);
    out += '}';
}

void writeFile(const std::filesystem::path& path, const std::string& content,
               std::vector<std::string>& written) {
    std::ofstream out{path, std::ios::binary};
    out << content;
    if (!out) throw std::runtime_error("cannot write " + path.string());
    written.push_back(path.string());
}

}  // namespace

std::string sweepToJson(const Summary& summary) {
    std::string out = "{\"sweep\":{";
    appendKey(out, "master_seed");
    out += std::to_string(summary.masterSeed);
    out += ',';
    appendKey(out, "trials_per_cell");
    out += std::to_string(summary.trialsPerCell);
    out += ',';
    appendKey(out, "failed_trials");
    out += std::to_string(summary.failedTrials());
    out += ',';
    appendKey(out, "cells");
    out += '[';
    const auto trials = static_cast<std::size_t>(summary.trialsPerCell);
    for (std::size_t c = 0; c < summary.cells.size(); ++c) {
        const CellSummary& cell = summary.cells[c];
        if (c != 0) out += ',';
        out += "{";
        appendKey(out, "label");
        out += '"';
        obs::appendJsonEscaped(out, cell.cell.label());
        out += "\",";
        appendKey(out, "params");
        appendCellParams(out, cell.cell);
        out += ',';
        appendKey(out, "failed_trials");
        out += std::to_string(cell.failedCount);
        out += ',';
        appendKey(out, "trials");
        out += '[';
        for (std::size_t t = 0; t < trials; ++t) {
            const TrialResult& trial = summary.trials[c * trials + t];
            if (t != 0) out += ',';
            out += "{";
            appendKey(out, "trial");
            out += std::to_string(t);
            out += ',';
            appendKey(out, "seed");
            out += std::to_string(trial.seed);
            out += ',';
            if (trial.ok) {
                appendKey(out, "metrics");
                out += '{';
                for (std::size_t m = 0; m < trial.metrics.size(); ++m) {
                    if (m != 0) out += ',';
                    appendKey(out, trial.metrics[m].first);
                    out += jsonNum(trial.metrics[m].second);
                }
                out += '}';
            } else {
                appendKey(out, "error");
                out += '"';
                obs::appendJsonEscaped(out, trial.error);
                out += '"';
            }
            out += '}';
        }
        out += "],";
        appendKey(out, "metrics");
        out += '{';
        for (std::size_t m = 0; m < cell.metrics.size(); ++m) {
            const auto& [name, stats] = cell.metrics[m];
            if (m != 0) out += ',';
            appendKey(out, name);
            out += '{';
            appendKey(out, "n");
            out += std::to_string(stats.n);
            out += ',';
            appendKey(out, "mean");
            out += jsonNum(stats.mean);
            out += ',';
            appendKey(out, "stddev");
            out += jsonNum(stats.stddev);
            out += ',';
            appendKey(out, "min");
            out += jsonNum(stats.min);
            out += ',';
            appendKey(out, "max");
            out += jsonNum(stats.max);
            out += ',';
            appendKey(out, "ci95");
            out += '[' + jsonNum(stats.ciLow) + ',' + jsonNum(stats.ciHigh) + "],";
            appendKey(out, "bootstrap95");
            out += '[' + jsonNum(stats.bootstrapLow) + ',' +
                   jsonNum(stats.bootstrapHigh) + ']';
            out += '}';
        }
        out += "}}";
    }
    out += "]}}\n";
    return out;
}

void exportSweepJson(const Summary& summary, const std::string& path) {
    std::ofstream out{path, std::ios::binary};
    out << sweepToJson(summary);
    if (!out) throw std::runtime_error("cannot write sweep JSON: " + path);
}

std::vector<std::string> exportSweepCsv(const Summary& summary,
                                        const std::string& directory) {
    const std::filesystem::path dir{directory};
    std::filesystem::create_directories(dir);
    std::vector<std::string> written;

    {
        analysis::TextTable table{{"cell", "metric", "n", "mean", "stddev", "min",
                                   "max", "ci95_lo", "ci95_hi", "bootstrap95_lo",
                                   "bootstrap95_hi"}};
        for (const auto& cell : summary.cells) {
            const std::string label = cell.cell.label();
            for (const auto& [name, stats] : cell.metrics) {
                table.addRow({label, name, std::to_string(stats.n),
                              jsonNum(stats.mean), jsonNum(stats.stddev),
                              jsonNum(stats.min), jsonNum(stats.max),
                              jsonNum(stats.ciLow), jsonNum(stats.ciHigh),
                              jsonNum(stats.bootstrapLow),
                              jsonNum(stats.bootstrapHigh)});
            }
        }
        writeFile(dir / "sweep_summary.csv", table.renderCsv(), written);
    }
    {
        analysis::TextTable table{{"cell", "trial", "seed", "status", "metric",
                                   "value"}};
        const auto trials = static_cast<std::size_t>(summary.trialsPerCell);
        for (std::size_t c = 0; c < summary.cells.size(); ++c) {
            const std::string label = summary.cells[c].cell.label();
            for (std::size_t t = 0; t < trials; ++t) {
                const TrialResult& trial = summary.trials[c * trials + t];
                if (!trial.ok) {
                    table.addRow({label, std::to_string(t), std::to_string(trial.seed),
                                  "error", trial.error, ""});
                    continue;
                }
                for (const auto& [name, value] : trial.metrics) {
                    table.addRow({label, std::to_string(t), std::to_string(trial.seed),
                                  "ok", name, jsonNum(value)});
                }
            }
        }
        writeFile(dir / "sweep_trials.csv", table.renderCsv(), written);
    }
    return written;
}

std::string renderSweepReport(const Summary& summary) {
    std::string out = "== Sweep summary ==\n";
    out += "master seed " + std::to_string(summary.masterSeed) + ", " +
           std::to_string(summary.trialsPerCell) + " trial(s) per cell, " +
           std::to_string(summary.cells.size()) + " cell(s)";
    const std::size_t failed = summary.failedTrials();
    if (failed > 0) out += ", " + std::to_string(failed) + " FAILED trial(s)";
    out += "\n\n";
    for (const auto& cell : summary.cells) {
        out += "-- " + cell.cell.label() + " --\n";
        analysis::TextTable table{
            {"metric", "mean", "stddev", "ci95_lo", "ci95_hi", "boot_lo", "boot_hi"}};
        for (const auto& [name, stats] : cell.metrics) {
            table.addRow({name, analysis::TextTable::num(stats.mean, 3),
                          analysis::TextTable::num(stats.stddev, 3),
                          analysis::TextTable::num(stats.ciLow, 3),
                          analysis::TextTable::num(stats.ciHigh, 3),
                          analysis::TextTable::num(stats.bootstrapLow, 3),
                          analysis::TextTable::num(stats.bootstrapHigh, 3)});
        }
        out += table.render();
        for (const auto& error : cell.errors) {
            out += "  !! " + error + "\n";
        }
        out += "\n";
    }
    return out;
}

}  // namespace symfail::experiment
