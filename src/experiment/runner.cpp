#include "experiment/runner.hpp"

#include <stdexcept>

#include "analysis/panic_stats.hpp"
#include "experiment/pool.hpp"
#include "experiment/seed.hpp"
#include "monitor/monitor.hpp"
#include "srgm/analyze.hpp"

namespace symfail::experiment {
namespace {

/// Salt for per-metric bootstrap streams; combined with the cell index so
/// no bootstrap resampler shares a stream with any trial or other cell.
constexpr std::uint64_t kBootstrapLane = ~0ULL;

}  // namespace

const SummaryStats* CellSummary::find(const std::string& name) const {
    for (const auto& [metric, stats] : metrics) {
        if (metric == name) return &stats;
    }
    return nullptr;
}

std::size_t Summary::failedTrials() const {
    std::size_t failed = 0;
    for (const auto& cell : cells) failed += cell.failedCount;
    return failed;
}

TrialMetrics fieldTrialMetrics(const Cell& cell, std::uint64_t seed) {
    auto config = cell.toStudyConfig(seed);
    // Each trial carries its own online monitor; it is read-only and
    // draws no randomness, so the campaign results are unchanged and the
    // alert counts are a pure function of the trial seed.
    monitor::FleetMonitor fleetMonitor;
    config.fleetConfig.obs.monitor = &fleetMonitor;
    // Per-trial provenance: like the monitor it is read-only, so the sweep
    // rollups gain pipeline loss accounting at zero cost to determinism.
    obs::ProvenanceTracker provenance;
    config.fleetConfig.obs.provenance = &provenance;
    const core::FailureStudy study{std::move(config)};
    const auto results = study.runFieldStudy();
    const auto& mtbf = results.mtbf;
    const double panics = static_cast<double>(results.dataset.panics().size());
    const double hours = mtbf.observedPhoneHours;
    // The two Table 2 shares the paper headlines: KERN-EXEC 3 (56.3%)
    // and the E32USER-CBase heap/active-object family (~18%).
    double kernExec3SharePct = 0.0;
    for (const auto& row : results.table2) {
        if (row.panic == symbos::kKernExecAccessViolation) {
            kernExec3SharePct = row.percent;
        }
    }
    const double cbaseSharePct = analysis::categoryShare(
        results.dataset, symbos::PanicCategory::E32UserCBase);
    const auto prov = provenance.summary();
    double provE2eP95 = 0.0;
    for (const auto& stage : prov.stages) {
        if (stage.stage == "end-to-end") provE2eP95 = stage.p95;
    }
    // Fleet-level reliability-growth rollups (per-phone/per-version fits
    // are skipped: cell statistics aggregate the fleet numbers).  The
    // analysis is read-only over the collected dataset, so campaign
    // results are bit-identical with or without it.
    srgm::SrgmOptions srgmOptions;
    srgmOptions.perPhone = false;
    srgmOptions.perVersion = false;
    const srgm::SrgmReport srgmReport =
        srgm::analyzeSrgm(results.dataset, results.classification, srgmOptions);
    const srgm::GroupReport& srgmFleet = srgmReport.fleet;
    const bool srgmHasBest = srgmFleet.bestIndex < srgmFleet.fits.size();
    return {
        {"mtbf_freeze_hours", mtbf.mtbfFreezeHours},
        {"mtbf_self_shutdown_hours", mtbf.mtbfSelfShutdownHours},
        {"mtbf_any_hours", mtbf.mtbfAnyFailureHours},
        {"freeze_count", static_cast<double>(mtbf.freezeCount)},
        {"self_shutdown_count", static_cast<double>(mtbf.selfShutdownCount)},
        {"panic_count", panics},
        {"panics_per_khour", hours > 0.0 ? 1000.0 * panics / hours : 0.0},
        {"kern_exec3_share_pct", kernExec3SharePct},
        {"cbase_share_pct", cbaseSharePct},
        {"panic_burst_fraction", analysis::burstFraction(results.fig3BurstLengths)},
        {"coalescence_related_fraction", results.fig5Coalescence.relatedFraction()},
        {"transport_delivery_ratio", results.fleet.transport.deliveryRatio()},
        {"observed_phone_hours", hours},
        {"boots", static_cast<double>(results.fleet.totalBoots)},
        {"monitor_alerts_fired", static_cast<double>(fleetMonitor.alerts().fired())},
        {"monitor_alerts_cleared",
         static_cast<double>(fleetMonitor.alerts().cleared())},
        {"monitor_related_panics",
         static_cast<double>(fleetMonitor.health().coalescence().relatedCount)},
        {"monitor_multi_bursts",
         static_cast<double>(fleetMonitor.health().multiBursts())},
        {"provenance_delivery_ratio",
         prov.created == 0 ? 1.0
                           : static_cast<double>(prov.delivered) /
                                 static_cast<double>(prov.created)},
        {"provenance_lost_records",
         static_cast<double>(prov.lostWire + prov.lostOutage)},
        {"provenance_pending_records", static_cast<double>(prov.pending)},
        {"provenance_e2e_p95_s", provE2eP95},
        {"provenance_conserved", prov.conserved() ? 1.0 : 0.0},
        // Measurement validity: how well the pipeline recovers ground
        // truth (degrades as osfault planes bite; 1.0 with them off).
        {"recovery_freeze_precision", results.evaluation.freezeDetection.precision()},
        {"recovery_freeze_recall", results.evaluation.freezeDetection.recall()},
        {"recovery_self_shutdown_precision",
         results.evaluation.selfShutdownDetection.precision()},
        {"recovery_self_shutdown_recall",
         results.evaluation.selfShutdownDetection.recall()},
        {"panic_capture_rate", results.evaluation.panicCaptureRate()},
        {"osfault_flash_activations",
         static_cast<double>(results.fleet.osfault.flash.activations)},
        {"osfault_mem_oom_kills",
         static_cast<double>(results.fleet.osfault.memory.oomKills)},
        {"osfault_clock_jumps",
         static_cast<double>(results.fleet.osfault.clock.jumps)},
        {"osfault_radio_activations",
         static_cast<double>(results.fleet.osfault.radio.activations)},
        {"logger_record_anomalies",
         static_cast<double>(results.fleet.loggerRecordAnomalies)},
        {"logger_daemon_deaths",
         static_cast<double>(results.fleet.loggerDaemonDeaths)},
        // Reliability growth: which NHPP model the fleet sequence selects,
        // the Laplace trend, and how the held-out forecast scored.
        {"srgm_events", static_cast<double>(srgmFleet.events)},
        {"srgm_best_model",
         srgmHasBest ? static_cast<double>(srgmFleet.bestIndex) : -1.0},
        {"srgm_laplace_trend", srgmFleet.laplace},
        {"srgm_ks_distance",
         srgmHasBest ? srgmFleet.fits[srgmFleet.bestIndex].ksDistance : 0.0},
        {"srgm_holdout_valid", srgmFleet.holdout.valid ? 1.0 : 0.0},
        {"srgm_holdout_count_rel_err",
         srgmFleet.holdout.valid ? srgmFleet.holdout.countRelError : 0.0},
        {"srgm_preq_gain_vs_hpp",
         srgmFleet.holdout.valid ? srgmFleet.holdout.preqGainVsHpp : 0.0},
    };
}

Runner::Runner(RunnerOptions options) : options_{std::move(options)} {
    if (!options_.trialFn) options_.trialFn = fieldTrialMetrics;
}

Summary Runner::run(const Grid& grid) const {
    if (options_.trials < 1) {
        throw std::runtime_error("experiment: trials must be >= 1");
    }
    if (grid.cells().empty()) {
        throw std::runtime_error("experiment: the grid has no cells");
    }

    Summary summary;
    summary.masterSeed = options_.masterSeed;
    summary.trialsPerCell = options_.trials;
    summary.jobs = options_.jobs;

    const auto trials = static_cast<std::size_t>(options_.trials);
    const std::size_t taskCount = grid.size() * trials;
    summary.trials.resize(taskCount);

    // Each task writes exclusively to its own pre-sized slot; the task
    // body depends only on (master seed, cell, trial), so any worker
    // count yields the same slots — see pool.hpp's determinism contract.
    runWorkStealing(taskCount, options_.jobs, [&](std::size_t index) {
        const std::size_t cellIndex = index / trials;
        const std::size_t trialIndex = index % trials;
        TrialResult& slot = summary.trials[index];
        slot.cellIndex = cellIndex;
        slot.trialIndex = trialIndex;
        slot.seed = deriveTrialSeed(options_.masterSeed, cellIndex, trialIndex);
        try {
            slot.metrics = options_.trialFn(grid.cells()[cellIndex], slot.seed);
            slot.ok = true;
        } catch (const std::exception& error) {
            slot.ok = false;
            slot.error = error.what();
        } catch (...) {
            slot.ok = false;
            slot.error = "unknown exception";
        }
    });

    // Aggregate sequentially in (cell, trial) order — the only order the
    // output ever sees.
    summary.cells.reserve(grid.size());
    for (std::size_t cellIndex = 0; cellIndex < grid.size(); ++cellIndex) {
        CellSummary cell;
        cell.cell = grid.cells()[cellIndex];
        cell.trialCount = trials;

        std::vector<std::string> metricOrder;
        std::vector<std::vector<double>> samples;
        for (std::size_t t = 0; t < trials; ++t) {
            const TrialResult& trial = summary.trials[cellIndex * trials + t];
            if (!trial.ok) {
                ++cell.failedCount;
                cell.errors.push_back("trial " + std::to_string(t) + " (seed " +
                                      std::to_string(trial.seed) +
                                      "): " + trial.error);
                continue;
            }
            for (const auto& [name, value] : trial.metrics) {
                std::size_t slot = 0;
                while (slot < metricOrder.size() && metricOrder[slot] != name) ++slot;
                if (slot == metricOrder.size()) {
                    metricOrder.push_back(name);
                    samples.emplace_back();
                }
                samples[slot].push_back(value);
            }
        }

        for (std::size_t m = 0; m < metricOrder.size(); ++m) {
            const std::uint64_t bootstrapSeed = deriveNamedSeed(
                deriveTrialSeed(options_.masterSeed, cellIndex, kBootstrapLane),
                metricOrder[m].c_str());
            cell.metrics.emplace_back(
                metricOrder[m],
                summarize(samples[m], bootstrapSeed, options_.bootstrapResamples));
        }
        summary.cells.push_back(std::move(cell));
    }

    if (options_.metrics != nullptr) {
        auto& registry = *options_.metrics;
        registry.counter("experiment", "cells", "grid cells swept")
            .inc(summary.cells.size());
        registry.counter("experiment", "trials_run", "trials executed").inc(taskCount);
        registry
            .counter("experiment", "trials_failed", "trials that threw an exception")
            .inc(summary.failedTrials());
        for (const auto& cell : summary.cells) {
            const std::string label = cell.cell.label();
            for (const auto& [name, stats] : cell.metrics) {
                registry
                    .gauge("experiment", name + "_mean", "cell", label,
                           "per-cell trial mean")
                    .set(stats.mean);
                registry
                    .gauge("experiment", name + "_stddev", "cell", label,
                           "per-cell trial stddev")
                    .set(stats.stddev);
            }
        }
    }
    return summary;
}

}  // namespace symfail::experiment
