#include "experiment/grid.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace symfail::experiment {
namespace {

/// Trims trailing zeros off a %.6f rendering so labels stay compact
/// ("5", "2.5") while remaining unambiguous.
std::string compactNum(double value) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.6f", value);
    std::string s{buf};
    s.erase(s.find_last_not_of('0') + 1);
    if (!s.empty() && s.back() == '.') s.pop_back();
    return s;
}

/// Minimal JSON reader for the grid schema: one object mapping string
/// keys to a number or a flat array of numbers.  Anything else is a
/// schema error with the offending byte offset.
class GridJsonReader {
public:
    explicit GridJsonReader(const std::string& text) : text_{text} {}

    /// Parses the whole document into (key, values) pairs.
    std::vector<std::pair<std::string, std::vector<double>>> read() {
        std::vector<std::pair<std::string, std::vector<double>>> entries;
        skipWs();
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos_;
        } else {
            while (true) {
                skipWs();
                std::string key = readString();
                skipWs();
                expect(':');
                skipWs();
                std::vector<double> values;
                if (peek() == '[') {
                    ++pos_;
                    skipWs();
                    if (peek() == ']') {
                        ++pos_;
                    } else {
                        while (true) {
                            skipWs();
                            values.push_back(readNumber());
                            skipWs();
                            if (peek() == ',') {
                                ++pos_;
                                continue;
                            }
                            expect(']');
                            break;
                        }
                    }
                } else {
                    values.push_back(readNumber());
                }
                entries.emplace_back(std::move(key), std::move(values));
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect('}');
                break;
            }
        }
        skipWs();
        if (pos_ != text_.size()) fail("trailing content after grid object");
        return entries;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        throw std::runtime_error("grid JSON at byte " + std::to_string(pos_) + ": " +
                                 what);
    }

    [[nodiscard]] char peek() const {
        if (pos_ >= text_.size()) return '\0';
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string{"expected '"} + c + "'");
        ++pos_;
    }

    void skipWs() {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
            ++pos_;
        }
    }

    std::string readString() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (c == '\\') fail("escapes are not supported in grid keys");
            out.push_back(c);
        }
    }

    double readNumber() {
        const std::size_t start = pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '-' ||
                c == '+' || c == '.' || c == 'e' || c == 'E') {
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start) fail("expected a number");
        const std::string token = text_.substr(start, pos_ - start);
        std::size_t consumed = 0;
        double value = 0.0;
        try {
            value = std::stod(token, &consumed);
        } catch (const std::exception&) {
            consumed = 0;
        }
        if (consumed != token.size() || !std::isfinite(value)) {
            pos_ = start;
            fail("malformed number '" + token + "'");
        }
        return value;
    }

    const std::string& text_;
    std::size_t pos_{0};
};

void requireRange(const char* axis, double value, double lo, double hi) {
    if (value < lo || value > hi) {
        std::ostringstream msg;
        msg << "grid axis '" << axis << "': value " << value << " outside [" << lo
            << ", " << hi << "]";
        throw std::runtime_error(msg.str());
    }
}

void requireInteger(const char* axis, double value) {
    if (value != std::floor(value)) {
        std::ostringstream msg;
        msg << "grid axis '" << axis << "': value " << value << " must be an integer";
        throw std::runtime_error(msg.str());
    }
}

template <typename T>
std::vector<T> integerAxis(const char* axis, const std::vector<double>& values,
                           double lo, double hi) {
    std::vector<T> out;
    out.reserve(values.size());
    for (const double v : values) {
        requireInteger(axis, v);
        requireRange(axis, v, lo, hi);
        out.push_back(static_cast<T>(v));
    }
    return out;
}

std::vector<double> realAxis(const char* axis, const std::vector<double>& values,
                             double lo, double hi) {
    for (const double v : values) requireRange(axis, v, lo, hi);
    return values;
}

}  // namespace

std::string Cell::label() const {
    std::string out = "phones=" + std::to_string(phones) +
                      " days=" + std::to_string(days) +
                      " loss=" + compactNum(lossPct) + " dup=" + compactNum(dupPct) +
                      " reorder=" + compactNum(reorderPct);
    if (outageDay >= 0) {
        out += " outage=" + std::to_string(outageDay) + "+" +
               std::to_string(outageDays) + "d";
    }
    out += " hb=" + compactNum(heartbeatSeconds) +
           " thresh=" + compactNum(selfShutdownThresholdSeconds);
    if (flashFaultPerKHour > 0.0) out += " flash=" + compactNum(flashFaultPerKHour);
    if (memPressurePerKHour > 0.0) out += " mem=" + compactNum(memPressurePerKHour);
    if (clockSkewPpm != 0.0) out += " skew=" + compactNum(clockSkewPpm);
    if (radioFaultPerKHour > 0.0) out += " radio=" + compactNum(radioFaultPerKHour);
    return out;
}

core::StudyConfig Cell::toStudyConfig(std::uint64_t seed) const {
    core::StudyConfig config;
    auto& fleet = config.fleetConfig;
    fleet.phoneCount = phones;
    fleet.campaign = sim::Duration::days(days);
    if (fleet.enrollmentWindow > fleet.campaign) {
        fleet.enrollmentWindow = fleet.campaign / 2;
    }
    fleet.seed = seed;
    fleet.loggerConfig.heartbeatPeriod = sim::Duration::fromSecondsF(heartbeatSeconds);
    auto& transport = fleet.transport;
    transport.dataChannel.lossProb = lossPct / 100.0;
    transport.dataChannel.dupProb = dupPct / 100.0;
    transport.dataChannel.reorderProb = reorderPct / 100.0;
    transport.ackChannel.lossProb = lossPct / 100.0;
    if (outageDay >= 0) {
        const auto start =
            sim::TimePoint::origin() + sim::Duration::days(outageDay);
        const transport::OutageWindow window{start,
                                             start + sim::Duration::days(outageDays)};
        transport.dataChannel.outages.push_back(window);
        transport.ackChannel.outages.push_back(window);
    }
    config.selfShutdownThresholdSeconds = selfShutdownThresholdSeconds;
    auto& osfault = fleet.osfault;
    osfault.flash.faultsPerKHour = flashFaultPerKHour;
    osfault.memory.episodesPerKHour = memPressurePerKHour;
    osfault.clock.skewPpm = clockSkewPpm;
    osfault.radio.faultsPerKHour = radioFaultPerKHour;
    return config;
}

Grid Grid::single(const Cell& cell) {
    Grid grid;
    grid.cells_.push_back(cell);
    return grid;
}

Grid Grid::fromAxes(const GridAxes& axes, const Cell& defaults) {
    // Missing axes collapse to the default value, so the product below is
    // always over non-empty lists.
    const auto orDefault = [](auto values, auto fallback) {
        if (values.empty()) values.push_back(fallback);
        return values;
    };
    const auto phones = orDefault(axes.phones, defaults.phones);
    const auto days = orDefault(axes.days, defaults.days);
    const auto loss = orDefault(axes.lossPct, defaults.lossPct);
    const auto dup = orDefault(axes.dupPct, defaults.dupPct);
    const auto reorder = orDefault(axes.reorderPct, defaults.reorderPct);
    const auto outageDay = orDefault(axes.outageDay, defaults.outageDay);
    const auto outageDays = orDefault(axes.outageDays, defaults.outageDays);
    const auto heartbeat = orDefault(axes.heartbeatSeconds, defaults.heartbeatSeconds);
    const auto threshold = orDefault(axes.selfShutdownThresholdSeconds,
                                     defaults.selfShutdownThresholdSeconds);
    const auto flash = orDefault(axes.flashFaultPerKHour, defaults.flashFaultPerKHour);
    const auto mem = orDefault(axes.memPressurePerKHour, defaults.memPressurePerKHour);
    const auto skew = orDefault(axes.clockSkewPpm, defaults.clockSkewPpm);
    const auto radio = orDefault(axes.radioFaultPerKHour, defaults.radioFaultPerKHour);

    Grid grid;
    for (const int p : phones)
        for (const long long d : days)
            for (const double l : loss)
                for (const double du : dup)
                    for (const double r : reorder)
                        for (const long long od : outageDay)
                            for (const long long ods : outageDays)
                                for (const double hb : heartbeat)
                                    for (const double th : threshold)
                                        for (const double ff : flash)
                                            for (const double mp : mem)
                                                for (const double cs : skew)
                                                    for (const double rf : radio) {
                                                        Cell cell;
                                                        cell.phones = p;
                                                        cell.days = d;
                                                        cell.lossPct = l;
                                                        cell.dupPct = du;
                                                        cell.reorderPct = r;
                                                        cell.outageDay = od;
                                                        cell.outageDays = ods;
                                                        cell.heartbeatSeconds = hb;
                                                        cell.selfShutdownThresholdSeconds = th;
                                                        cell.flashFaultPerKHour = ff;
                                                        cell.memPressurePerKHour = mp;
                                                        cell.clockSkewPpm = cs;
                                                        cell.radioFaultPerKHour = rf;
                                                        grid.cells_.push_back(cell);
                                                    }
    return grid;
}

Grid Grid::parse(const std::string& json, const Cell& defaults) {
    GridJsonReader reader{json};
    GridAxes axes;
    for (const auto& [key, values] : reader.read()) {
        if (key == "phones") {
            axes.phones = integerAxis<int>("phones", values, 1, 100'000);
        } else if (key == "days") {
            axes.days = integerAxis<long long>("days", values, 1, 36'500);
        } else if (key == "loss_pct") {
            axes.lossPct = realAxis("loss_pct", values, 0.0, 100.0);
        } else if (key == "dup_pct") {
            axes.dupPct = realAxis("dup_pct", values, 0.0, 100.0);
        } else if (key == "reorder_pct") {
            axes.reorderPct = realAxis("reorder_pct", values, 0.0, 100.0);
        } else if (key == "outage_day") {
            axes.outageDay = integerAxis<long long>("outage_day", values, -1, 36'500);
        } else if (key == "outage_days") {
            axes.outageDays = integerAxis<long long>("outage_days", values, 0, 36'500);
        } else if (key == "heartbeat_seconds") {
            axes.heartbeatSeconds =
                realAxis("heartbeat_seconds", values, 1.0, 86'400.0);
        } else if (key == "self_shutdown_threshold_seconds") {
            axes.selfShutdownThresholdSeconds =
                realAxis("self_shutdown_threshold_seconds", values, 1.0, 86'400.0);
        } else if (key == "flash_fault_per_khour") {
            axes.flashFaultPerKHour =
                realAxis("flash_fault_per_khour", values, 0.0, 100'000.0);
        } else if (key == "mem_pressure_per_khour") {
            axes.memPressurePerKHour =
                realAxis("mem_pressure_per_khour", values, 0.0, 100'000.0);
        } else if (key == "clock_skew_ppm") {
            axes.clockSkewPpm = realAxis("clock_skew_ppm", values, -10'000.0, 10'000.0);
        } else if (key == "radio_fault_per_khour") {
            axes.radioFaultPerKHour =
                realAxis("radio_fault_per_khour", values, 0.0, 100'000.0);
        } else {
            throw std::runtime_error("grid JSON: unknown axis '" + key + "'");
        }
    }
    return fromAxes(axes, defaults);
}

Grid Grid::load(const std::string& path, const Cell& defaults) {
    std::ifstream in{path, std::ios::binary};
    if (!in) throw std::runtime_error("cannot read grid file: " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse(buffer.str(), defaults);
}

}  // namespace symfail::experiment
