// The experiment engine: replicated trials over a sweep grid.
//
// Every headline number the repo reproduces (MTBF, panic rates, the
// freeze/self-shutdown split) is a Monte Carlo draw; one draw cannot say
// whether a change moved a metric or re-rolled the dice.  The Runner runs
// N independent trials per grid cell across a work-stealing pool, derives
// each trial's campaign seed from (master seed, cell, trial) only — see
// experiment/seed.hpp — and aggregates per-trial scalar metrics into
// mean / stddev / 95% CI (Student-t and bootstrap).  Output is
// byte-identical for any `jobs` value, including 1.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "experiment/grid.hpp"
#include "experiment/stats.hpp"
#include "obs/metrics.hpp"

namespace symfail::experiment {

/// Ordered (metric name, value) pairs one trial produces.
using TrialMetrics = std::vector<std::pair<std::string, double>>;

/// One trial's outcome.  A trial that throws is recorded here — with the
/// exception text — without poisoning its siblings.
struct TrialResult {
    std::size_t cellIndex{0};
    std::size_t trialIndex{0};
    std::uint64_t seed{0};
    bool ok{false};
    std::string error;  ///< Exception text when !ok.
    TrialMetrics metrics;
};

/// Aggregated replication statistics for one grid cell.
struct CellSummary {
    Cell cell;
    std::size_t trialCount{0};
    std::size_t failedCount{0};
    /// Per-metric summaries in first-seen metric order.
    std::vector<std::pair<std::string, SummaryStats>> metrics;
    /// "trial 3 (seed 123...): what()" for each failed trial.
    std::vector<std::string> errors;

    /// Summary for a named metric; nullptr when absent.
    [[nodiscard]] const SummaryStats* find(const std::string& name) const;
};

/// The whole sweep's result matrix.
struct Summary {
    std::uint64_t masterSeed{0};
    int trialsPerCell{0};
    int jobs{0};  ///< Informational only; never affects the numbers.
    std::vector<CellSummary> cells;
    std::vector<TrialResult> trials;  ///< All trials, (cell, trial)-ordered.

    [[nodiscard]] std::size_t failedTrials() const;
};

/// Runs the default field-study trial for `cell` with `seed` and extracts
/// the scalar metric set (MTBF triple, failure counts, panic rate,
/// coalescence fraction, transport delivery, observed hours, boots).
[[nodiscard]] TrialMetrics fieldTrialMetrics(const Cell& cell, std::uint64_t seed);

/// Engine configuration.
struct RunnerOptions {
    int trials{5};
    int jobs{1};
    std::uint64_t masterSeed{2007};
    /// Bootstrap resamples per metric; <= 0 disables the bootstrap CI.
    int bootstrapResamples{1000};
    /// Per-cell aggregate rollup destination (optional, non-owning).
    obs::MetricsRegistry* metrics{nullptr};
    /// The trial body; defaults to `fieldTrialMetrics`.  Exposed so tests
    /// can substitute cheap or deliberately failing trials.
    std::function<TrialMetrics(const Cell&, std::uint64_t seed)> trialFn;
};

/// The engine.
class Runner {
public:
    explicit Runner(RunnerOptions options);

    /// Executes trials x cells and aggregates.  Throws std::runtime_error
    /// on invalid options (trials < 1, empty grid).
    [[nodiscard]] Summary run(const Grid& grid) const;

    [[nodiscard]] const RunnerOptions& options() const { return options_; }

private:
    RunnerOptions options_;
};

}  // namespace symfail::experiment
