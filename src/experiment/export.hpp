// Sweep result export: machine-readable JSON and CSV, plus the human
// report the CLI prints.  All renderings iterate the summary in (cell,
// trial, metric) order with fixed float formatting, so a fixed master
// seed produces byte-identical files for any `--jobs` value.
#pragma once

#include <string>
#include <vector>

#include "experiment/runner.hpp"

namespace symfail::experiment {

/// One JSON document: master seed, per-cell parameter block, per-trial
/// raw metrics (with seeds and errors), and per-metric mean / stddev /
/// Student-t CI / bootstrap CI.
[[nodiscard]] std::string sweepToJson(const Summary& summary);

/// Writes `sweepToJson` to `path`; throws std::runtime_error on I/O
/// failure.
void exportSweepJson(const Summary& summary, const std::string& path);

/// Writes `sweep_summary.csv` (one row per cell x metric) and
/// `sweep_trials.csv` (one row per trial x metric) into `directory`,
/// creating it if missing.  Returns the paths written.
std::vector<std::string> exportSweepCsv(const Summary& summary,
                                        const std::string& directory);

/// Aligned human-readable report (per-cell metric table with CIs).
[[nodiscard]] std::string renderSweepReport(const Summary& summary);

}  // namespace symfail::experiment
