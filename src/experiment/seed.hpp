// Deterministic per-trial seed derivation.
//
// Every trial of a sweep draws its campaign seed from one master seed via
// SplitMix64-style substream hashing over the (cell, trial) coordinates.
// The derivation depends only on those coordinates — never on thread ids,
// scheduling order or the `--jobs` value — so a sweep's results are
// byte-identical whether it runs on one worker or sixteen, and distinct
// trials never share an RNG substream (xoshiro256++ streams seeded from
// distinct 64-bit values are independent for our sample sizes).
#pragma once

#include <cstdint>

namespace symfail::experiment {

/// Derives the campaign seed for trial `trialIndex` of grid cell
/// `cellIndex` from `masterSeed`.  Pure function of its arguments;
/// distinct (cell, trial) pairs map to distinct seeds with overwhelming
/// probability (full-avalanche 64-bit finalizers over injectively packed
/// coordinates).
[[nodiscard]] std::uint64_t deriveTrialSeed(std::uint64_t masterSeed,
                                            std::uint64_t cellIndex,
                                            std::uint64_t trialIndex);

/// Derives the seed for an auxiliary deterministic consumer (e.g. the
/// bootstrap resampler for one metric) from a master seed and a salt
/// string.  Same guarantees as `deriveTrialSeed`.
[[nodiscard]] std::uint64_t deriveNamedSeed(std::uint64_t masterSeed,
                                            const char* salt);

}  // namespace symfail::experiment
