#include "experiment/pool.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace symfail::experiment {
namespace {

/// One worker's task queue.  The owner pops from the back (LIFO keeps its
/// cache warm); thieves take from the front (FIFO steals the tasks the
/// owner would reach last, which for our round-robin seeding are the ones
/// most worth redistributing).
struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::size_t> tasks;

    bool popBack(std::size_t& out) {
        const std::lock_guard<std::mutex> lock{mutex};
        if (tasks.empty()) return false;
        out = tasks.back();
        tasks.pop_back();
        return true;
    }

    bool stealFront(std::size_t& out) {
        const std::lock_guard<std::mutex> lock{mutex};
        if (tasks.empty()) return false;
        out = tasks.front();
        tasks.pop_front();
        return true;
    }
};

}  // namespace

void runWorkStealing(std::size_t taskCount, int workers,
                     const std::function<void(std::size_t)>& task) {
    if (taskCount == 0) return;
    const auto workerCount = static_cast<std::size_t>(std::max(workers, 1));
    if (workerCount == 1) {
        for (std::size_t i = 0; i < taskCount; ++i) task(i);
        return;
    }

    // Round-robin seeding spreads neighbouring indices (same grid cell,
    // similar cost) across workers, so stealing is the exception rather
    // than the steady state.
    std::vector<WorkerQueue> queues{workerCount};
    for (std::size_t i = 0; i < taskCount; ++i) {
        queues[i % workerCount].tasks.push_back(i);
    }

    std::atomic<std::size_t> remaining{taskCount};
    const auto workerLoop = [&](std::size_t self) {
        while (remaining.load(std::memory_order_acquire) > 0) {
            std::size_t index = 0;
            bool found = queues[self].popBack(index);
            for (std::size_t k = 1; !found && k < workerCount; ++k) {
                found = queues[(self + k) % workerCount].stealFront(index);
            }
            if (!found) {
                // All queues momentarily empty but siblings still running;
                // yield until they either finish or expose stealable work
                // (they cannot: tasks are not subdivided — so this ends).
                std::this_thread::yield();
                continue;
            }
            task(index);
            remaining.fetch_sub(1, std::memory_order_acq_rel);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workerCount - 1);
    for (std::size_t w = 1; w < workerCount; ++w) {
        threads.emplace_back(workerLoop, w);
    }
    workerLoop(0);
    for (auto& thread : threads) thread.join();
}

}  // namespace symfail::experiment
