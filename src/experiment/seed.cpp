#include "experiment/seed.hpp"

namespace symfail::experiment {
namespace {

/// SplitMix64 finalizer: a full-avalanche bijection on 64-bit words.
constexpr std::uint64_t mix(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

/// Feeds one word into a running SplitMix64 stream state.
constexpr std::uint64_t absorb(std::uint64_t state, std::uint64_t word) {
    return mix(state + word + 0x9E3779B97F4A7C15ULL);
}

}  // namespace

std::uint64_t deriveTrialSeed(std::uint64_t masterSeed, std::uint64_t cellIndex,
                              std::uint64_t trialIndex) {
    // Absorb the coordinates one at a time: the packing is injective
    // (each absorption is a bijection of the running state for a fixed
    // input word), so distinct (master, cell, trial) triples cannot
    // collide by construction of the first two words and collide on the
    // final mix only with ~2^-64 probability.
    std::uint64_t state = mix(masterSeed ^ 0x5265706C6963ULL);  // "Replic"
    state = absorb(state, cellIndex);
    state = absorb(state, trialIndex);
    return state;
}

std::uint64_t deriveNamedSeed(std::uint64_t masterSeed, const char* salt) {
    std::uint64_t state = mix(masterSeed ^ 0x426F6F7473ULL);  // "Boots"
    for (const char* p = salt; *p != '\0'; ++p) {
        state = absorb(state, static_cast<std::uint64_t>(static_cast<unsigned char>(*p)));
    }
    return state;
}

}  // namespace symfail::experiment
