// Parameter sweep grids.
//
// A Grid is the Cartesian product of per-parameter value lists ("axes")
// over the campaign knobs worth sweeping: fleet size, campaign length,
// transport loss/dup/reorder and outage windows, the logger heartbeat
// period, and the self-shutdown discrimination threshold.  Each point of
// the product is a Cell — one fully concrete campaign configuration that
// the experiment Runner replicates N times with derived seeds.
//
// Grids load from a small JSON file (`symfail sweep --grid FILE.json`):
// one object whose keys are axis names and whose values are a number or
// an array of numbers, e.g.
//
//   { "phones": [5, 10], "days": 60, "loss_pct": [0, 5, 20] }
//
// Unknown keys are rejected loudly — a typo must not silently sweep the
// default instead of the intended axis.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/study.hpp"

namespace symfail::experiment {

/// One concrete point of the sweep: every swept parameter pinned.
struct Cell {
    int phones{5};
    long long days{60};
    double lossPct{5.0};     ///< Data-channel frame loss, percent.
    double dupPct{2.0};      ///< Frame duplication, percent.
    double reorderPct{10.0}; ///< Frame reordering, percent.
    long long outageDay{-1}; ///< First day of a transport outage; -1: none.
    long long outageDays{3}; ///< Outage length, days.
    double heartbeatSeconds{60.0};
    double selfShutdownThresholdSeconds{360.0};
    // OS-interface fault-plane axes.  All default to zero (no plane
    // attached), which keeps labels and campaign output identical to
    // pre-osfault grids.
    double flashFaultPerKHour{0.0};   ///< Flash-plane faults per 1000 h.
    double memPressurePerKHour{0.0};  ///< Memory-pressure episodes per 1000 h.
    double clockSkewPpm{0.0};         ///< Device-clock skew, parts per million.
    double radioFaultPerKHour{0.0};   ///< Radio-plane faults per 1000 h.

    /// Stable human-readable identity, e.g.
    /// "phones=5 days=60 loss=5 dup=2 reorder=10 hb=60 thresh=360".
    /// Osfault axes append only when nonzero, so old labels are stable.
    [[nodiscard]] std::string label() const;

    /// Materializes the study configuration for one trial of this cell.
    [[nodiscard]] core::StudyConfig toStudyConfig(std::uint64_t seed) const;
};

/// Axis names accepted by the JSON schema, in canonical order.
struct GridAxes {
    std::vector<int> phones;
    std::vector<long long> days;
    std::vector<double> lossPct;
    std::vector<double> dupPct;
    std::vector<double> reorderPct;
    std::vector<long long> outageDay;
    std::vector<long long> outageDays;
    std::vector<double> heartbeatSeconds;
    std::vector<double> selfShutdownThresholdSeconds;
    std::vector<double> flashFaultPerKHour;
    std::vector<double> memPressurePerKHour;
    std::vector<double> clockSkewPpm;
    std::vector<double> radioFaultPerKHour;
};

/// The sweep grid: an ordered list of cells.
class Grid {
public:
    /// A single cell with the given defaults (the no-grid-file case).
    [[nodiscard]] static Grid single(const Cell& cell);

    /// Expands axes into cells (Cartesian product, axes varying slowest
    /// to fastest in the canonical order above).  Missing axes take the
    /// corresponding value from `defaults`.  Throws std::runtime_error on
    /// an empty product or out-of-range values.
    [[nodiscard]] static Grid fromAxes(const GridAxes& axes, const Cell& defaults);

    /// Parses the JSON schema described above.  Throws std::runtime_error
    /// with a position-annotated message on malformed input, unknown keys,
    /// or out-of-range values.
    [[nodiscard]] static Grid parse(const std::string& json, const Cell& defaults);

    /// `parse` over a file's contents.
    [[nodiscard]] static Grid load(const std::string& path, const Cell& defaults);

    [[nodiscard]] const std::vector<Cell>& cells() const { return cells_; }
    [[nodiscard]] std::size_t size() const { return cells_.size(); }

private:
    std::vector<Cell> cells_;
};

}  // namespace symfail::experiment
