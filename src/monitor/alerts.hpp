// Declarative alert rules over monitor metrics.
//
// A rule names a metric (fleet-wide, or evaluated per phone), a threshold
// comparison, and a severity.  The engine evaluates all rules at each
// monitor tick against a metric lookup and keeps firing/clearing state:
// one FIRING event when the condition first holds, one CLEARED event when
// it stops (optionally with a separate clear threshold for hysteresis, so
// a metric hovering at the line does not flap).  A metric the lookup
// cannot produce (e.g. windowed MTBF with no failures in the window)
// counts as "condition not met" and clears.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "simkernel/time.hpp"

namespace symfail::monitor {

enum class Severity : std::uint8_t { Info, Warning, Critical };
[[nodiscard]] std::string_view toString(Severity severity);

enum class Comparison : std::uint8_t {
    GreaterThan,
    GreaterOrEqual,
    LessThan,
    LessOrEqual,
};
[[nodiscard]] std::string_view toString(Comparison op);

/// One declarative rule.
struct AlertRule {
    std::string name;
    std::string metric;
    Comparison op{Comparison::GreaterThan};
    double threshold{0.0};
    Severity severity{Severity::Warning};
    /// Evaluate once per registered phone instead of once fleet-wide.
    bool perPhone{false};
    /// Hysteresis: once firing, the alert clears only when the value stops
    /// satisfying `op` against this threshold (defaults to `threshold`).
    std::optional<double> clearThreshold;
};

/// Attribution of FIRING alert edges to labelled cause activations (e.g.
/// the osfault planes' activation timestamps): an alert is attributed to
/// a label when some activation with that label precedes it within
/// `window`.  Multiple labels can claim the same alert; alerts no label
/// claims are counted under "unattributed".  Purely diagnostic — built
/// from the alert log after the run.
[[nodiscard]] std::map<std::string, std::uint64_t> attributeAlerts(
    const std::vector<struct AlertEvent>& log,
    const std::vector<std::pair<std::string, sim::TimePoint>>& activations,
    sim::Duration window);

/// One transition in the alert log.
struct AlertEvent {
    sim::TimePoint time;
    std::string rule;
    std::string phone;  ///< Empty for fleet-scope rules.
    bool firing{true};  ///< false: the CLEARED edge.
    double value{0.0};
    Severity severity{Severity::Warning};
};

/// Rule evaluation with firing/clearing state.
class AlertEngine {
public:
    /// Lookup for metric values; returns nullopt when the metric is
    /// undefined at this instant.  `phone` is empty for fleet scope.
    using MetricFn = std::function<std::optional<double>(
        const std::string& metric, const std::string& phone)>;

    explicit AlertEngine(std::vector<AlertRule> rules = {});

    /// Evaluates every rule (per-phone rules once per name in `phones`).
    void evaluate(sim::TimePoint now, const std::vector<std::string>& phones,
                  const MetricFn& metric);

    [[nodiscard]] const std::vector<AlertRule>& rules() const { return rules_; }
    [[nodiscard]] const std::vector<AlertEvent>& log() const { return log_; }
    [[nodiscard]] std::uint64_t fired() const { return fired_; }
    [[nodiscard]] std::uint64_t cleared() const { return cleared_; }
    [[nodiscard]] std::size_t activeCount() const { return fired_ - cleared_; }
    /// Active alerts as "rule" or "rule/phone", sorted by rule then phone.
    [[nodiscard]] std::vector<std::string> activeLabels() const;

private:
    void evaluateOne(sim::TimePoint now, const AlertRule& rule,
                     std::size_t ruleIdx, const std::string& phone,
                     const MetricFn& metric);
    [[nodiscard]] static bool satisfies(Comparison op, double value,
                                        double threshold);

    std::vector<AlertRule> rules_;
    /// (rule index, phone) -> currently firing.
    std::map<std::pair<std::size_t, std::string>, bool> state_;
    std::vector<AlertEvent> log_;
    std::uint64_t fired_{0};
    std::uint64_t cleared_{0};
};

}  // namespace symfail::monitor
