// The online fleet-health monitor.
//
// FleetMonitor is a fleet::CampaignObserver: attached to a campaign via
// FleetConfig::obs.monitor it taps the collection server's ingest stream,
// turns frames into records (monitor/stream), feeds the streaming
// analytics (monitor/health), tracks per-phone liveness from upload
// silence — distinguishing "the transport is in an outage window" from
// "the device went dark" via the outage probe — and evaluates declarative
// alert rules (monitor/alerts) on a periodic tick of the *simulated*
// clock.  Every tick appends a snapshot; the run ends with a JSONL
// snapshot stream, an alert log, a metrics publication and an ASCII
// dashboard.
//
// Determinism: the monitor draws no randomness and reads only simulated
// time, so its entire output is a pure function of the campaign seed —
// byte-identical at any --jobs count.  Non-perturbation: it never mutates
// campaign state, so collected logs and analysis tables are bit-identical
// with the monitor on or off.
//
// Replay mode (`replay`) feeds an already-collected dataset through the
// same engine with virtual ticks, then finalizes; after that the online
// burst and coalescence counts equal the batch src/analysis results on
// the same data exactly (see HealthEngine's contract).  In live mode the
// counts are best-effort until finalization: a permanently lost segment
// holds back records behind it that the batch reconstruction would
// recover via its gap-splice.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/dataset.hpp"
#include "fleet/fleet.hpp"
#include "fleet/observer.hpp"
#include "monitor/alerts.hpp"
#include "monitor/health.hpp"
#include "monitor/stream.hpp"
#include "obs/metrics.hpp"
#include "simkernel/simulator.hpp"

namespace symfail::monitor {

/// Monitor configuration.
struct MonitorConfig {
    HealthConfig health{};
    /// Snapshot / alert-evaluation cadence on the simulated clock.
    sim::Duration tick = sim::Duration::hours(6);
    /// Upload silence beyond this flags a phone (suspect or outage).
    /// Phones upload only when the log grows (a boot or a panic), so a
    /// healthy quiet phone can be silent for a day or two; three days is
    /// past the bulk of benign gaps at the paper's failure rates.
    double silenceHours = 72.0;
    /// Settle window for retiring exactly-full segments (see SegmentTap).
    sim::Duration settleTimeout = sim::Duration::hours(12);
    /// Alert rules; empty selects defaultRules().
    std::vector<AlertRule> rules;
};

/// The built-in rule set: fleet failure-rate spike, windowed-MTBF floor,
/// per-phone upload silence (suspect/outage) and panic-burst activity.
[[nodiscard]] std::vector<AlertRule> defaultRules(const MonitorConfig& config);

/// Per-phone liveness as classified at the last tick.
enum class Liveness : std::uint8_t { NotEnrolled, Healthy, SilentOutage, SilentSuspect };
[[nodiscard]] std::string_view toString(Liveness liveness);

/// One periodic snapshot of the monitor's state.
struct Snapshot {
    sim::TimePoint at;
    std::uint64_t records{0};
    std::uint64_t frames{0};
    std::uint64_t malformed{0};
    std::size_t phonesRegistered{0};
    std::size_t phonesHeard{0};
    std::size_t silentSuspect{0};
    std::size_t silentOutage{0};
    WindowStats window;
    HealthTotals totals;
    std::size_t resolvedPanics{0};
    std::size_t relatedPanics{0};
    std::size_t pendingPanics{0};
    std::uint64_t multiBursts{0};
    std::uint64_t alertsFired{0};    ///< Cumulative.
    std::uint64_t alertsCleared{0};  ///< Cumulative.
    std::size_t alertsActive{0};
    std::vector<std::string> silentPhones;  ///< Sorted; suspect and outage.
    std::vector<std::string> activeAlerts;  ///< Sorted "rule" / "rule/phone".
};

/// The monitor.  One instance observes one campaign (or one replay).
class FleetMonitor final : public fleet::CampaignObserver {
public:
    explicit FleetMonitor(MonitorConfig config = {});

    // -- fleet::CampaignObserver --------------------------------------------
    void onCampaignBegin(sim::Simulator& simulator,
                         const fleet::FleetConfig& config) override;
    void onPhoneEnrolled(const std::string& phoneName, sim::TimePoint enrollAt,
                         fleet::OutageProbe outageProbe) override;
    void onCampaignEnd(sim::TimePoint at) override;
    void onWholeFile(const std::string& phoneName, std::string_view content,
                     bool stored) override;
    void onFrameAccepted(const transport::IngestResult& frame) override;
    void onProvenanceAttached(obs::ProvenanceTracker* tracker) override;
    /// Approximate monitor-held bytes (stream buffers, presence table,
    /// health windows, snapshot history) for the resource accountant.
    [[nodiscard]] std::uint64_t approxMemoryBytes() const override;

    /// Replay mode: streams an already-collected dataset through the
    /// engine in global time order with virtual ticks, then finalizes.
    void replay(const std::vector<analysis::PhoneLog>& logs);

    // -- results ------------------------------------------------------------
    [[nodiscard]] const HealthEngine& health() const { return health_; }
    [[nodiscard]] const AlertEngine& alerts() const { return alerts_; }
    [[nodiscard]] const std::vector<Snapshot>& snapshots() const { return snapshots_; }
    [[nodiscard]] std::uint64_t framesSeen() const { return framesSeen_; }
    [[nodiscard]] std::uint64_t recordsConsumed() const { return recordsConsumed_; }
    [[nodiscard]] const MonitorConfig& config() const { return config_; }

    /// Snapshot stream as JSON lines (one object per tick).
    [[nodiscard]] std::string snapshotsJsonl() const;
    /// The alert log as plain text lines.
    [[nodiscard]] std::string renderAlertLog() const;
    /// Final ASCII dashboard.
    [[nodiscard]] std::string renderDashboard() const;
    /// Publishes monitor counters/gauges under the "monitor" namespace.
    void publishMetrics(obs::MetricsRegistry& registry) const;

private:
    enum class PathMode : std::uint8_t { None, Chunked, Whole };
    struct PhoneStream {
        SegmentTap tap;
        LineBuffer lines;
        PathMode mode{PathMode::None};
        std::size_t wholeConsumed{0};
    };
    struct Presence {
        sim::TimePoint enrollAt;
        sim::TimePoint lastIngestAt;
        bool heard{false};
        fleet::OutageProbe probe;
        Liveness liveness{Liveness::NotEnrolled};
    };

    Presence& registerPhone(const std::string& phoneName, sim::TimePoint at);
    void consumeLines(const std::string& phoneName, std::string_view complete);
    void feedStream(const std::string& phoneName, PhoneStream& stream,
                    std::string_view released);
    /// Reports this stream's consumption watermark (bytes of the phone's
    /// log fully consumed as complete records) to the provenance tracker.
    void stampProvenance(const std::string& phoneName, const PhoneStream& stream);
    void tick(sim::TimePoint now);
    [[nodiscard]] std::optional<double> metricValue(
        const std::string& metric, const std::string& phone, sim::TimePoint now,
        const WindowStats& window,
        const std::map<std::string, PhoneHealthView>& views) const;

    MonitorConfig config_;
    HealthEngine health_;
    AlertEngine alerts_;
    std::map<std::string, PhoneStream> streams_;
    std::map<std::string, Presence> presence_;
    sim::Simulator* simulator_{nullptr};
    sim::PeriodicHandle tickHandle_;
    std::vector<Snapshot> snapshots_;
    std::uint64_t framesSeen_{0};
    std::uint64_t recordsConsumed_{0};
    sim::TimePoint lastEventAt_;
    bool finalized_{false};
    obs::ProvenanceTracker* provenance_{nullptr};
};

}  // namespace symfail::monitor
