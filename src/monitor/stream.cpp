#include "monitor/stream.hpp"

#include <algorithm>

namespace symfail::monitor {

std::string SegmentTap::push(std::uint32_t seq, std::uint32_t segCount,
                             std::string_view payload, sim::TimePoint at) {
    maxSegCount_ = std::max(maxSegCount_, segCount);
    if (seq < nextSeq_) return drain(at);  // already released and retired

    Segment& segment = pending_[seq];
    if (payload.size() > segment.bytes.size()) {
        segment.bytes.assign(payload);
    }
    // The frame's own segCount names the snapshot it was cut from: a later
    // segment in that snapshot means this one was closed at this length.
    if (segCount >= seq + 2) segment.closedProven = true;
    segment.lastFrameAt = at;
    return drain(at);
}

std::string SegmentTap::poll(sim::TimePoint at) {
    return drain(at);
}

std::string SegmentTap::flush() {
    // End of stream: no further frame can arrive, so the copy held of
    // every contiguous segment is the final one; only a true gap (a
    // missing segment) still stops the release — recovering past a gap is
    // the batch reconstruction's job, not the tap's.
    std::string out;
    for (;;) {
        const auto it = pending_.find(nextSeq_);
        if (it == pending_.end()) break;
        Segment& segment = it->second;
        if (segment.bytes.size() > consumed_) {
            out.append(segment.bytes, consumed_, segment.bytes.npos);
        }
        pending_.erase(it);
        ++nextSeq_;
        consumed_ = 0;
        settleArmedAt_.reset();
    }
    bytesReleased_ += out.size();
    return out;
}

std::string SegmentTap::drain(sim::TimePoint at) {
    std::string out;
    for (;;) {
        const auto it = pending_.find(nextSeq_);
        if (it == pending_.end()) break;
        Segment& segment = it->second;

        // Release growth: any received prefix of the tail is final bytes
        // (append-only chunking), so stream it straight through.
        if (segment.bytes.size() > consumed_) {
            out.append(segment.bytes, consumed_, segment.bytes.npos);
            consumed_ = segment.bytes.size();
        }

        // Retire the segment only once its final copy provably arrived.
        // The settle path covers the rare segment that filled exactly to
        // capacity: its last frame still advertised it as the tail, and a
        // successful ack means no longer copy will ever be offered — after
        // a quiet settle window with a later segment known, call it final.
        // The settle clock starts when the later segment first became
        // known, NOT from the held copy's (possibly days-old) last frame:
        // within one upload round the later segment's frame can overtake
        // the grown closing copy of this one, and retiring on that first
        // news would freeze the stale short copy for good.
        const bool laterSegmentKnown = maxSegCount_ >= nextSeq_ + 2;
        if (laterSegmentKnown && !settleArmedAt_) settleArmedAt_ = at;
        const bool settled = laterSegmentKnown && settleArmedAt_ &&
                             at - *settleArmedAt_ >= settleTimeout_ &&
                             at - segment.lastFrameAt >= settleTimeout_;
        if (!segment.closedProven && !settled) break;

        pending_.erase(it);
        ++nextSeq_;
        consumed_ = 0;
        settleArmedAt_.reset();  // the settle window is per front segment
    }
    bytesReleased_ += out.size();
    return out;
}

std::string LineBuffer::feed(std::string_view bytes) {
    buffer_.append(bytes);
    const auto lastNewline = buffer_.rfind('\n');
    if (lastNewline == std::string::npos) return {};
    std::string complete = buffer_.substr(0, lastNewline + 1);
    buffer_.erase(0, lastNewline + 1);
    return complete;
}

}  // namespace symfail::monitor
