// Streaming record extraction from the ingest path.
//
// The batch pipeline waits for campaign end and reconstructs each phone's
// Log File from the reassembler's chunk map.  The monitor cannot wait: it
// must turn the out-of-order, duplicated, gap-ridden frame stream into
// parsed records *as frames arrive*, while emitting every byte at most
// once and strictly in log order.  Two small machines do that:
//
//   * SegmentTap — per-phone: tracks the contiguous segment prefix of the
//     chunk map and releases bytes as the prefix extends.  The open tail
//     segment is released incrementally (chunking is append-only, so any
//     received prefix of it is final).  A closed segment is released and
//     passed only when the tap can prove it holds the final copy: either a
//     frame for it advertised a later segment (that snapshot had already
//     closed it), or a settle timeout elapsed with a later segment known
//     (covers the segment that filled exactly to its capacity and was
//     acked first try — no longer copy will ever be sent).  A permanently
//     lost segment therefore holds back everything behind it; the batch
//     reconstruction at campaign end still recovers the tail via its
//     gap-splice, which is the documented live-vs-replay difference.
//
//   * LineBuffer — reassembled bytes to complete records: buffers until a
//     newline lands, so records torn across segment boundaries parse once
//     and exactly once.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "simkernel/time.hpp"

namespace symfail::monitor {

/// Orders one phone's segment stream into an append-only byte stream.
class SegmentTap {
public:
    explicit SegmentTap(sim::Duration settleTimeout = sim::Duration::hours(12))
        : settleTimeout_{settleTimeout} {}

    /// Feeds the stored content of segment `seq` after a frame arrival
    /// (`segCount` as advertised by that frame).  Returns the bytes newly
    /// released to the contiguous stream (possibly empty).
    [[nodiscard]] std::string push(std::uint32_t seq, std::uint32_t segCount,
                                   std::string_view payload, sim::TimePoint at);

    /// Timeout-driven drain (called from the monitor's periodic tick):
    /// releases segments whose settle window expired.
    [[nodiscard]] std::string poll(sim::TimePoint at);

    /// End-of-stream drain: releases every buffered contiguous segment
    /// unconditionally (no more frames can arrive, so the held copies are
    /// final).  Still stops at a missing segment.
    [[nodiscard]] std::string flush();

    /// Segments buffered behind the contiguous prefix.
    [[nodiscard]] std::size_t buffered() const { return pending_.size(); }
    [[nodiscard]] std::uint64_t bytesReleased() const { return bytesReleased_; }

    /// Approximate heap footprint of the buffered segments.
    [[nodiscard]] std::size_t approxMemoryBytes() const {
        constexpr std::size_t mapNode = 3 * sizeof(void*);
        std::size_t total = sizeof *this;
        for (const auto& [seq, segment] : pending_) {
            total += sizeof(seq) + segment.bytes.size() + sizeof(Segment) + mapNode;
        }
        return total;
    }

private:
    struct Segment {
        std::string bytes;
        /// A frame for this very segment advertised a later one, proving
        /// the copy we hold is the final (closed) length.
        bool closedProven{false};
        sim::TimePoint lastFrameAt;
    };

    [[nodiscard]] std::string drain(sim::TimePoint at);

    std::map<std::uint32_t, Segment> pending_;
    std::uint32_t nextSeq_{0};
    std::size_t consumed_{0};  ///< Bytes of segment nextSeq_ already released.
    std::uint32_t maxSegCount_{0};
    /// When a later segment first became known for the current front
    /// segment; the settle window counts from here (reset on advance).
    std::optional<sim::TimePoint> settleArmedAt_;
    sim::Duration settleTimeout_;
    std::uint64_t bytesReleased_{0};
};

/// Cuts an append-only byte stream into complete, newline-terminated
/// chunks ready for logger::parseLogFile.
class LineBuffer {
public:
    /// Appends bytes; returns the longest complete-line prefix now
    /// available (empty until a newline arrives).
    [[nodiscard]] std::string feed(std::string_view bytes);

    [[nodiscard]] std::size_t pendingBytes() const { return buffer_.size(); }

    /// Approximate heap footprint of the pending partial line.
    [[nodiscard]] std::size_t approxMemoryBytes() const {
        return sizeof *this + buffer_.size();
    }

private:
    std::string buffer_;
};

}  // namespace symfail::monitor
