// Online fleet-health analytics.
//
// The batch pipeline (src/analysis) answers the paper's questions after
// the campaign: burst structure (Figure 3), self-shutdown discrimination
// (Figure 2), panic/HL-event coalescence (Figures 4-5), MTBF.  The
// HealthEngine answers the same questions *while records stream in*,
// advancing only on simulated event time.
//
// Exactness contract: fed one phone's records in log order and then
// finalized, the engine's burst-length counter and coalescence counts
// equal the batch results on the same data, bit for bit.  The key
// obstacle is that high-level (HL) events are revealed retroactively — a
// freeze only becomes visible in the *next* boot record, timestamped at
// the last ALIVE heartbeat before it.  The engine therefore holds each
// panic pending until no future record can change its relation: an
// unrevealed HL event of a phone is always later than that phone's record
// watermark minus one heartbeat period (nothing is logged between the
// last beat and the shutdown except, for freezes, records within the beat
// period), so a panic at t is safe to resolve once the watermark passes
// t + window + heartbeatPeriod.  finalize() resolves everything left.
//
// Sliding-window rates (not part of the batch pipeline) count revealed
// events in (now - rateWindow, now] against the observed phone-time
// overlapping the window.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/coalescence.hpp"
#include "analysis/discriminator.hpp"
#include "crash/signature.hpp"
#include "logger/records.hpp"
#include "simkernel/histogram.hpp"
#include "simkernel/time.hpp"

namespace symfail::monitor {

/// Analytic knobs; defaults mirror the paper's batch analysis.
struct HealthConfig {
    double coalescenceWindowSeconds = analysis::kCoalescenceWindowSeconds;
    double burstGapSeconds = 300.0;
    double selfShutdownThresholdSeconds = analysis::kSelfShutdownThresholdSeconds;
    /// Sliding window for rates and windowed MTBF.
    sim::Duration rateWindow = sim::Duration::days(7);
    /// Lateness bound for live panic finalization (see file comment).
    sim::Duration heartbeatPeriod = sim::Duration::seconds(60);
};

/// Fleet-wide windowed counts at one instant.
struct WindowStats {
    std::uint64_t freezes{0};
    std::uint64_t selfShutdowns{0};
    std::uint64_t reboots{0};  ///< All boot records in the window.
    std::uint64_t panics{0};
    std::uint64_t multiBursts{0};  ///< Bursts of length >= 2 closed in the window.
    std::uint64_t dumps{0};        ///< Crash dumps in the window.
    std::uint64_t crashFamilies{0};  ///< Families with >= 1 windowed dump.
    std::uint64_t topFamilyDumps{0};  ///< Largest per-family windowed count.
    std::string topFamilyId;          ///< "" when the window holds no dump.
    double observedHours{0.0};     ///< Phone-time overlapping the window.
    /// Observed hours per failure; 0 when the window holds no failure.
    double mtbfFreezeHours{0.0};
    double mtbfSelfShutdownHours{0.0};
    double mtbfAnyHours{0.0};
    /// (freezes + self-shutdowns) per 1000 observed hours.
    double failureRatePerKiloHour{0.0};
    /// Windowed Laplace trend factor over freezes + self-shutdowns:
    /// standardized mean event position inside each phone's observed
    /// slice of the window.  ~N(0,1) under a constant rate; positive
    /// means failures cluster late (reliability regressing), negative
    /// means early (growth).  0 when the window holds no failure.
    double laplaceTrend{0.0};
    /// Expected failures over the next window-length horizon, from a
    /// moment-matched linear intensity fitted to the windowed events.
    double forecastNextWindowFailures{0.0};
};

/// Lifetime tallies across the fed stream.
struct HealthTotals {
    std::uint64_t records{0};
    std::uint64_t boots{0};
    std::uint64_t panics{0};
    std::uint64_t freezes{0};
    std::uint64_t selfShutdowns{0};
    std::uint64_t userShutdowns{0};
    std::uint64_t lowBatteryShutdowns{0};
    std::uint64_t manualOffBoots{0};
    std::uint64_t userReports{0};
    std::uint64_t dumps{0};
};

/// Online coalescence summary; field names follow analysis::CoalescenceResult.
struct CoalescenceCounts {
    std::size_t panicsResolved{0};
    std::size_t relatedCount{0};
    std::size_t pendingPanics{0};
    std::size_t hlWithPanic{0};
    std::size_t hlTotal{0};
    std::vector<analysis::CategoryRelationRow> byCategory;  ///< Category-sorted.
    [[nodiscard]] double relatedFraction() const {
        return panicsResolved == 0 ? 0.0
                                   : static_cast<double>(relatedCount) /
                                         static_cast<double>(panicsResolved);
    }
};

/// One phone as the dashboard and the alert engine see it.
struct PhoneHealthView {
    std::string name;
    std::uint64_t freezes{0};
    std::uint64_t selfShutdowns{0};
    std::uint64_t panics{0};
    std::uint64_t reboots{0};
    std::uint64_t windowFreezes{0};
    std::uint64_t windowSelfShutdowns{0};
    std::uint64_t windowPanics{0};
    double windowObservedHours{0.0};
    /// Observed hours per windowed failure; 0 when the window is clean.
    double windowMtbfAnyHours{0.0};
    /// Length of the burst still open at the last fed panic.
    std::size_t openBurstLen{0};
    sim::TimePoint lastRecordAt;
};

/// Streaming analytics over per-phone record streams.
class HealthEngine {
public:
    explicit HealthEngine(HealthConfig config = {});

    /// Feeds one parsed record.  Records of one phone must arrive in log
    /// order (nondecreasing time) — exactly what the ingest tap produces.
    void onRecord(const std::string& phone, const logger::LogFileEntry& entry);
    void addMalformed(std::uint64_t lines) { malformedLines_ += lines; }

    /// Advances the window clock: events at or before `now - rateWindow`
    /// leave the windowed counts.
    void trimTo(sim::TimePoint now);

    /// End of stream: resolves every pending panic and closes open bursts,
    /// making the online counts equal to the batch pipeline's.
    void finalize();

    [[nodiscard]] WindowStats windowStats(sim::TimePoint now) const;
    /// Finalized burst lengths (open bursts join at finalize()).
    [[nodiscard]] const sim::FreqCounter& burstLengths() const { return bursts_; }
    [[nodiscard]] std::uint64_t multiBursts() const { return multiBursts_; }
    [[nodiscard]] CoalescenceCounts coalescence() const;
    [[nodiscard]] const HealthTotals& totals() const { return totals_; }
    [[nodiscard]] std::uint64_t malformedLines() const { return malformedLines_; }
    [[nodiscard]] std::vector<PhoneHealthView> phones(sim::TimePoint now) const;
    [[nodiscard]] std::optional<PhoneHealthView> phone(const std::string& name,
                                                       sim::TimePoint now) const;
    [[nodiscard]] const HealthConfig& config() const { return config_; }

    /// Approximate heap footprint of the per-phone streaming state and
    /// fleet-wide windows; deterministic for identical record streams.
    [[nodiscard]] std::size_t approxMemoryBytes() const;

private:
    struct HlEvent {
        sim::TimePoint time;
        analysis::PanicRelation kind;  ///< Freeze or SelfShutdown.
        bool matched{false};
    };
    struct PendingPanic {
        sim::TimePoint time;
        symbos::PanicCategory category;
    };
    struct PhoneState {
        // Stream position.
        sim::TimePoint watermark;
        sim::TimePoint firstRecordAt;
        bool heard{false};
        // Coalescence.
        std::vector<HlEvent> hls;
        std::deque<PendingPanic> pending;
        // Bursts.
        std::size_t burstLen{0};
        sim::TimePoint prevPanicAt;
        // Windowed events (revealed-event times, time-sorted).
        std::deque<sim::TimePoint> windowFreezes;
        std::deque<sim::TimePoint> windowSelf;
        std::deque<sim::TimePoint> windowBoots;
        std::deque<sim::TimePoint> windowPanics;
        // Lifetime tallies.
        std::uint64_t freezes{0};
        std::uint64_t selfShutdowns{0};
        std::uint64_t panics{0};
        std::uint64_t reboots{0};
    };

    void addHl(PhoneState& state, sim::TimePoint time, analysis::PanicRelation kind);
    void feedPanic(PhoneState& state, sim::TimePoint time);
    /// Resolves pending panics whose relation can no longer change.
    void resolveReady(const std::string& phone, PhoneState& state);
    void resolvePanic(PhoneState& state, const PendingPanic& panic);
    void closeBurst(PhoneState& state);
    [[nodiscard]] sim::TimePoint windowCutoff(sim::TimePoint now) const;

    HealthConfig config_;
    std::map<std::string, PhoneState> phones_;
    std::map<symbos::PanicCategory, analysis::CategoryRelationRow> byCategory_;
    sim::FreqCounter bursts_;
    std::uint64_t multiBursts_{0};
    /// Close times of multi-panic bursts, for the windowed count.
    std::deque<sim::TimePoint> windowMultiBursts_;
    /// Fleet-wide windowed dump times per crash family (family-scoped
    /// burst detection); keyed by the stable family id.
    std::map<std::string, std::deque<sim::TimePoint>> windowFamilies_;
    std::size_t relatedCount_{0};
    std::size_t panicsResolved_{0};
    std::size_t hlMatched_{0};
    HealthTotals totals_;
    std::uint64_t malformedLines_{0};
    bool finalized_{false};
};

}  // namespace symfail::monitor
