#include "monitor/alerts.hpp"

#include <algorithm>

namespace symfail::monitor {

std::string_view toString(Severity severity) {
    switch (severity) {
        case Severity::Info: return "INFO";
        case Severity::Warning: return "WARNING";
        case Severity::Critical: return "CRITICAL";
    }
    return "?";
}

std::string_view toString(Comparison op) {
    switch (op) {
        case Comparison::GreaterThan: return ">";
        case Comparison::GreaterOrEqual: return ">=";
        case Comparison::LessThan: return "<";
        case Comparison::LessOrEqual: return "<=";
    }
    return "?";
}

AlertEngine::AlertEngine(std::vector<AlertRule> rules) : rules_{std::move(rules)} {}

bool AlertEngine::satisfies(Comparison op, double value, double threshold) {
    switch (op) {
        case Comparison::GreaterThan: return value > threshold;
        case Comparison::GreaterOrEqual: return value >= threshold;
        case Comparison::LessThan: return value < threshold;
        case Comparison::LessOrEqual: return value <= threshold;
    }
    return false;
}

void AlertEngine::evaluateOne(sim::TimePoint now, const AlertRule& rule,
                              std::size_t ruleIdx, const std::string& phone,
                              const MetricFn& metric) {
    bool& firing = state_[{ruleIdx, phone}];
    const auto value = metric(rule.metric, phone);
    bool condition = false;
    if (value) {
        // Hysteresis: an already-firing alert is held against the clear
        // threshold, so a value hovering at the line does not flap.
        const double threshold =
            firing ? rule.clearThreshold.value_or(rule.threshold) : rule.threshold;
        condition = satisfies(rule.op, *value, threshold);
    }
    if (condition == firing) return;
    firing = condition;
    if (condition) {
        ++fired_;
    } else {
        ++cleared_;
    }
    log_.push_back(AlertEvent{now, rule.name, phone, condition,
                              value.value_or(0.0), rule.severity});
}

void AlertEngine::evaluate(sim::TimePoint now,
                           const std::vector<std::string>& phones,
                           const MetricFn& metric) {
    for (std::size_t i = 0; i < rules_.size(); ++i) {
        const AlertRule& rule = rules_[i];
        if (!rule.perPhone) {
            evaluateOne(now, rule, i, {}, metric);
            continue;
        }
        for (const auto& phone : phones) {
            evaluateOne(now, rule, i, phone, metric);
        }
    }
}

std::vector<std::string> AlertEngine::activeLabels() const {
    std::vector<std::string> labels;
    for (const auto& [key, firing] : state_) {
        if (!firing) continue;
        const auto& [ruleIdx, phone] = key;
        std::string label = rules_[ruleIdx].name;
        if (!phone.empty()) {
            label += '/';
            label += phone;
        }
        labels.push_back(std::move(label));
    }
    std::sort(labels.begin(), labels.end());
    return labels;
}

std::map<std::string, std::uint64_t> attributeAlerts(
    const std::vector<AlertEvent>& log,
    const std::vector<std::pair<std::string, sim::TimePoint>>& activations,
    sim::Duration window) {
    std::map<std::string, std::uint64_t> counts;
    for (const AlertEvent& event : log) {
        if (!event.firing) continue;
        bool claimed = false;
        // One count per label per alert, however many of that label's
        // activations fall in the window.
        std::map<std::string, bool> seen;
        for (const auto& [label, at] : activations) {
            if (at > event.time || event.time - at > window) continue;
            if (seen[label]) continue;
            seen[label] = true;
            ++counts[label];
            claimed = true;
        }
        if (!claimed) ++counts["unattributed"];
    }
    return counts;
}

}  // namespace symfail::monitor
