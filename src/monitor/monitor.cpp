#include "monitor/monitor.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "obs/provenance.hpp"
#include "obs/trace.hpp"  // appendJsonEscaped

namespace symfail::monitor {
namespace {

void appendf(std::string& out, const char* format, auto... args) {
    char buf[512];
    std::snprintf(buf, sizeof buf, format, args...);
    out += buf;
}

void appendNumber(std::string& out, double value) {
    appendf(out, "%.10g", value);
}

void appendQuoted(std::string& out, std::string_view s) {
    out += '"';
    obs::appendJsonEscaped(out, s);
    out += '"';
}

void appendStringArray(std::string& out, const std::vector<std::string>& items) {
    out += '[';
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out += ',';
        appendQuoted(out, items[i]);
    }
    out += ']';
}

sim::TimePoint entryTime(const logger::LogFileEntry& entry) {
    switch (entry.type) {
        case logger::LogFileEntry::Type::Panic: return entry.panic.time;
        case logger::LogFileEntry::Type::Boot: return entry.boot.time;
        case logger::LogFileEntry::Type::UserReport: return entry.userReport.time;
        case logger::LogFileEntry::Type::Meta: return entry.meta.time;
        case logger::LogFileEntry::Type::Dump: return entry.dump.time;
    }
    return {};
}

/// Max-pooled ASCII sparkline over `values`, at most `width` columns.
std::string sparkline(const std::vector<double>& values, std::size_t width) {
    static constexpr std::string_view kLevels = " .:-=+*#%@";
    if (values.empty()) return {};
    width = std::min(width, values.size());
    std::vector<double> pooled(width, 0.0);
    for (std::size_t i = 0; i < values.size(); ++i) {
        const std::size_t bucket = i * width / values.size();
        pooled[bucket] = std::max(pooled[bucket], values[i]);
    }
    const double peak = *std::max_element(pooled.begin(), pooled.end());
    std::string out;
    out.reserve(width);
    for (const double v : pooled) {
        std::size_t level = 0;
        if (peak > 0.0) {
            level = static_cast<std::size_t>(v / peak *
                                             static_cast<double>(kLevels.size() - 1));
        }
        out += kLevels[std::min(level, kLevels.size() - 1)];
    }
    return out;
}

}  // namespace

std::string_view toString(Liveness liveness) {
    switch (liveness) {
        case Liveness::NotEnrolled: return "not-enrolled";
        case Liveness::Healthy: return "healthy";
        case Liveness::SilentOutage: return "silent-outage";
        case Liveness::SilentSuspect: return "silent-suspect";
    }
    return "?";
}

std::vector<AlertRule> defaultRules(const MonitorConfig& config) {
    std::vector<AlertRule> rules;
    // Fleet failure rate: the paper's steady state is ~7 failures per 1000
    // observed hours (MTBFr 313 h + MTBS 250 h); twice that is a spike.
    rules.push_back(AlertRule{"fleet-failure-rate-high",
                              "window_failure_rate_per_khour",
                              Comparison::GreaterThan, 15.0, Severity::Warning,
                              false, 12.0});
    // Windowed MTBF floor: combined paper MTBF is ~139 h; below 60 h the
    // fleet is failing at better than twice the expected pace.
    rules.push_back(AlertRule{"fleet-mtbf-low", "windowed_mtbf_any_hours",
                              Comparison::LessThan, 60.0, Severity::Critical,
                              false, 75.0});
    // Upload silence, attributed: dead device vs transport outage.
    rules.push_back(AlertRule{"phone-silent", "silence_hours",
                              Comparison::GreaterThan, config.silenceHours,
                              Severity::Critical, true, {}});
    rules.push_back(AlertRule{"phone-outage", "outage_silence_hours",
                              Comparison::GreaterThan, config.silenceHours,
                              Severity::Warning, true, {}});
    // Reliability regressing: the windowed Laplace trend is ~N(0,1)
    // under a constant failure rate, so a sustained value above 2 means
    // failures are clustering late in the window — the fitted intensity
    // trend has inverted from growth to degradation.
    rules.push_back(AlertRule{"reliability-regressing", "window_laplace_trend",
                              Comparison::GreaterThan, 2.0, Severity::Warning,
                              false, 1.0});
    // Burst activity: multi-panic bursts are normal (~25% of bursts), so
    // only an elevated windowed count is noteworthy.
    rules.push_back(AlertRule{"panic-burst-activity", "window_multi_bursts",
                              Comparison::GreaterOrEqual, 3.0, Severity::Info,
                              false, 2.0});
    // Family-scoped burst: at the paper's rates the busiest crash family
    // collects ~4 dumps per weekly window; ten means one failure mechanism
    // is running hot across the fleet.
    rules.push_back(AlertRule{"crash-family-burst", "window_top_family_dumps",
                              Comparison::GreaterOrEqual, 10.0, Severity::Info,
                              false, 8.0});
    return rules;
}

FleetMonitor::FleetMonitor(MonitorConfig config)
    : config_{std::move(config)},
      health_{config_.health},
      alerts_{config_.rules.empty() ? defaultRules(config_) : config_.rules} {}

void FleetMonitor::onCampaignBegin(sim::Simulator& simulator,
                                   const fleet::FleetConfig& config) {
    simulator_ = &simulator;
    // Adopt the campaign's heartbeat period: it bounds how far an HL
    // event's timestamp can trail the record stream (the finalization
    // safety margin).
    config_.health.heartbeatPeriod = config.loggerConfig.heartbeatPeriod;
    health_ = HealthEngine{config_.health};
    tickHandle_ = simulator.schedulePeriodic(
        config_.tick, "monitor.tick",
        [this](sim::Periodic&) { tick(simulator_->now()); });
}

FleetMonitor::Presence& FleetMonitor::registerPhone(const std::string& phoneName,
                                                    sim::TimePoint at) {
    const auto [it, inserted] = presence_.try_emplace(phoneName);
    if (inserted) {
        it->second.enrollAt = at;
        it->second.lastIngestAt = at;
    }
    return it->second;
}

void FleetMonitor::onPhoneEnrolled(const std::string& phoneName,
                                   sim::TimePoint enrollAt,
                                   fleet::OutageProbe outageProbe) {
    Presence& presence = registerPhone(phoneName, enrollAt);
    presence.enrollAt = enrollAt;
    presence.lastIngestAt = enrollAt;
    presence.probe = std::move(outageProbe);
}

void FleetMonitor::consumeLines(const std::string& phoneName,
                                std::string_view complete) {
    if (complete.empty()) return;
    std::size_t malformed = 0;
    const auto entries = logger::parseLogFile(complete, &malformed);
    health_.addMalformed(malformed);
    for (const auto& entry : entries) {
        health_.onRecord(phoneName, entry);
        ++recordsConsumed_;
    }
}

void FleetMonitor::feedStream(const std::string& phoneName, PhoneStream& stream,
                              std::string_view released) {
    if (released.empty()) return;
    consumeLines(phoneName, stream.lines.feed(released));
    stampProvenance(phoneName, stream);
}

void FleetMonitor::stampProvenance(const std::string& phoneName,
                                   const PhoneStream& stream) {
    if (provenance_ == nullptr || simulator_ == nullptr) return;
    // Watermark: bytes released into the line buffer minus the partial
    // line it still holds — everything below it was consumed as complete
    // records.
    const std::uint64_t released = stream.mode == PathMode::Chunked
                                       ? stream.tap.bytesReleased()
                                       : stream.wholeConsumed;
    const std::uint64_t pending = stream.lines.pendingBytes();
    provenance_->monitorConsumed(phoneName, released - pending,
                                 simulator_->now());
}

void FleetMonitor::onProvenanceAttached(obs::ProvenanceTracker* tracker) {
    provenance_ = tracker;
}

void FleetMonitor::onFrameAccepted(const transport::IngestResult& frame) {
    if (simulator_ == nullptr) return;  // live hook; replay feeds records directly
    const auto now = simulator_->now();
    Presence& presence = registerPhone(frame.phone, now);
    presence.heard = true;
    presence.lastIngestAt = now;
    ++framesSeen_;
    lastEventAt_ = std::max(lastEventAt_, now);

    const auto [it, inserted] = streams_.try_emplace(frame.phone);
    PhoneStream& stream = it->second;
    if (inserted) stream.tap = SegmentTap{config_.settleTimeout};
    if (stream.mode == PathMode::Whole) return;  // first ingest path wins
    stream.mode = PathMode::Chunked;
    const std::string released =
        stream.tap.push(frame.seq, frame.segCount, frame.payload, now);
    feedStream(frame.phone, stream, released);
}

void FleetMonitor::onWholeFile(const std::string& phoneName,
                               std::string_view content, bool stored) {
    if (!stored || simulator_ == nullptr) return;
    const auto now = simulator_->now();
    Presence& presence = registerPhone(phoneName, now);
    presence.heard = true;
    presence.lastIngestAt = now;
    lastEventAt_ = std::max(lastEventAt_, now);

    PhoneStream& stream = streams_[phoneName];
    if (stream.mode == PathMode::Chunked) return;  // first ingest path wins
    stream.mode = PathMode::Whole;
    // Whole-file uploads are snapshots of an append-only file; only the
    // growth past what we already consumed is new.
    if (content.size() <= stream.wholeConsumed) return;
    const std::string_view growth = content.substr(stream.wholeConsumed);
    stream.wholeConsumed = content.size();
    consumeLines(phoneName, stream.lines.feed(growth));
    stampProvenance(phoneName, stream);
}

void FleetMonitor::onCampaignEnd(sim::TimePoint at) {
    tickHandle_.stop();
    // The stream is closed: every held segment copy is final, so drain the
    // taps unconditionally (true gaps still hold their tails back).
    for (auto& [name, stream] : streams_) {
        if (stream.mode == PathMode::Chunked) {
            feedStream(name, stream, stream.tap.flush());
        }
    }
    health_.finalize();
    finalized_ = true;
    tick(at);
}

void FleetMonitor::replay(const std::vector<analysis::PhoneLog>& logs) {
    struct Item {
        sim::TimePoint time;
        const std::string* phone;
        const logger::LogFileEntry* entry;
    };
    std::vector<std::vector<logger::LogFileEntry>> parsed;
    parsed.reserve(logs.size());
    std::size_t total = 0;
    for (const auto& log : logs) {
        std::size_t malformed = 0;
        parsed.push_back(logger::parseLogFile(log.logFileContent, &malformed));
        health_.addMalformed(malformed);
        total += parsed.back().size();
    }
    std::vector<Item> items;
    items.reserve(total);
    for (std::size_t i = 0; i < logs.size(); ++i) {
        for (const auto& entry : parsed[i]) {
            items.push_back(Item{entryTime(entry), &logs[i].phoneName, &entry});
        }
    }
    // Global ingest order: by record time, per-phone log order preserved
    // on ties (stable sort over the per-phone sequential layout).
    std::stable_sort(items.begin(), items.end(),
                     [](const Item& a, const Item& b) { return a.time < b.time; });

    if (!items.empty()) {
        sim::TimePoint nextTick = items.front().time + config_.tick;
        for (const Item& item : items) {
            while (item.time > nextTick) {
                tick(nextTick);
                nextTick += config_.tick;
            }
            Presence& presence = registerPhone(*item.phone, item.time);
            presence.heard = true;
            presence.lastIngestAt = std::max(presence.lastIngestAt, item.time);
            health_.onRecord(*item.phone, *item.entry);
            ++recordsConsumed_;
            lastEventAt_ = std::max(lastEventAt_, item.time);
        }
    }
    health_.finalize();
    finalized_ = true;
    tick(lastEventAt_);
}

std::optional<double> FleetMonitor::metricValue(
    const std::string& metric, const std::string& phone, sim::TimePoint now,
    const WindowStats& window,
    const std::map<std::string, PhoneHealthView>& views) const {
    if (phone.empty()) {
        if (metric == "window_failure_rate_per_khour") {
            if (window.observedHours <= 0.0) return std::nullopt;
            return window.failureRatePerKiloHour;
        }
        if (metric == "windowed_mtbf_any_hours") {
            if (window.freezes + window.selfShutdowns == 0) return std::nullopt;
            return window.mtbfAnyHours;
        }
        if (metric == "window_freezes") return static_cast<double>(window.freezes);
        if (metric == "window_self_shutdowns") {
            return static_cast<double>(window.selfShutdowns);
        }
        if (metric == "window_reboots") return static_cast<double>(window.reboots);
        if (metric == "window_panics") return static_cast<double>(window.panics);
        if (metric == "window_multi_bursts") {
            return static_cast<double>(window.multiBursts);
        }
        if (metric == "window_dumps") return static_cast<double>(window.dumps);
        if (metric == "window_crash_families") {
            return static_cast<double>(window.crashFamilies);
        }
        if (metric == "window_top_family_dumps") {
            return static_cast<double>(window.topFamilyDumps);
        }
        if (metric == "window_laplace_trend") {
            // The normal approximation is unusable on a handful of
            // events; stay silent until the window holds a real sample.
            if (window.freezes + window.selfShutdowns < 6) return std::nullopt;
            return window.laplaceTrend;
        }
        if (metric == "window_forecast_failures") {
            return window.forecastNextWindowFailures;
        }
        if (metric == "window_observed_hours") return window.observedHours;
        if (metric == "phones_silent") {
            std::size_t silent = 0;
            for (const auto& [name, presence] : presence_) {
                if (presence.liveness == Liveness::SilentOutage ||
                    presence.liveness == Liveness::SilentSuspect) {
                    ++silent;
                }
            }
            return static_cast<double>(silent);
        }
        return std::nullopt;
    }

    if (metric == "silence_hours" || metric == "outage_silence_hours") {
        const auto it = presence_.find(phone);
        if (it == presence_.end() || now < it->second.enrollAt) return std::nullopt;
        const Presence& presence = it->second;
        const bool inOutage = presence.probe && presence.probe(now);
        // Silence is attributed: while the upload path is in a known
        // outage window the device cannot be blamed, and vice versa.
        if ((metric == "outage_silence_hours") != inOutage) return std::nullopt;
        const auto last = std::max(presence.lastIngestAt, presence.enrollAt);
        return (now - last).asHoursF();
    }

    const auto it = views.find(phone);
    if (it == views.end()) return std::nullopt;
    const PhoneHealthView& view = it->second;
    if (metric == "window_panics") return static_cast<double>(view.windowPanics);
    if (metric == "window_freezes") return static_cast<double>(view.windowFreezes);
    if (metric == "window_self_shutdowns") {
        return static_cast<double>(view.windowSelfShutdowns);
    }
    if (metric == "window_mtbf_any_hours") {
        if (view.windowFreezes + view.windowSelfShutdowns == 0) return std::nullopt;
        return view.windowMtbfAnyHours;
    }
    if (metric == "open_burst_len") return static_cast<double>(view.openBurstLen);
    return std::nullopt;
}

void FleetMonitor::tick(sim::TimePoint now) {
    // Live mode: settle-timeout releases first, so this tick sees them.
    if (!finalized_ && simulator_ != nullptr) {
        for (auto& [name, stream] : streams_) {
            if (stream.mode == PathMode::Chunked) {
                feedStream(name, stream, stream.tap.poll(now));
            }
        }
    }
    health_.trimTo(now);
    const WindowStats window = health_.windowStats(now);
    std::map<std::string, PhoneHealthView> views;
    for (auto& view : health_.phones(now)) {
        views.emplace(view.name, std::move(view));
    }

    std::vector<std::string> phoneNames;
    phoneNames.reserve(presence_.size());
    std::vector<std::string> silentPhones;
    std::size_t suspect = 0;
    std::size_t outage = 0;
    std::size_t heard = 0;
    for (auto& [name, presence] : presence_) {
        phoneNames.push_back(name);
        if (presence.heard) ++heard;
        if (now < presence.enrollAt) {
            presence.liveness = Liveness::NotEnrolled;
            continue;
        }
        const auto last = std::max(presence.lastIngestAt, presence.enrollAt);
        const double silenceH = (now - last).asHoursF();
        if (silenceH > config_.silenceHours) {
            const bool inOutage = presence.probe && presence.probe(now);
            presence.liveness =
                inOutage ? Liveness::SilentOutage : Liveness::SilentSuspect;
            if (inOutage) {
                ++outage;
            } else {
                ++suspect;
            }
            silentPhones.push_back(name);
        } else {
            presence.liveness = Liveness::Healthy;
        }
    }

    alerts_.evaluate(now, phoneNames,
                     [&](const std::string& metric, const std::string& phone) {
                         return metricValue(metric, phone, now, window, views);
                     });

    const auto coalescence = health_.coalescence();
    Snapshot snapshot;
    snapshot.at = now;
    snapshot.records = recordsConsumed_;
    snapshot.frames = framesSeen_;
    snapshot.malformed = health_.malformedLines();
    snapshot.phonesRegistered = presence_.size();
    snapshot.phonesHeard = heard;
    snapshot.silentSuspect = suspect;
    snapshot.silentOutage = outage;
    snapshot.window = window;
    snapshot.totals = health_.totals();
    snapshot.resolvedPanics = coalescence.panicsResolved;
    snapshot.relatedPanics = coalescence.relatedCount;
    snapshot.pendingPanics = coalescence.pendingPanics;
    snapshot.multiBursts = health_.multiBursts();
    snapshot.alertsFired = alerts_.fired();
    snapshot.alertsCleared = alerts_.cleared();
    snapshot.alertsActive = alerts_.activeCount();
    snapshot.silentPhones = std::move(silentPhones);
    snapshot.activeAlerts = alerts_.activeLabels();
    snapshots_.push_back(std::move(snapshot));
}

std::string FleetMonitor::snapshotsJsonl() const {
    std::string out;
    for (const Snapshot& s : snapshots_) {
        appendf(out, "{\"t_hours\":");
        appendNumber(out, (s.at - sim::TimePoint::origin()).asHoursF());
        appendf(out, ",\"records\":%llu,\"frames\":%llu,\"malformed\":%llu",
                static_cast<unsigned long long>(s.records),
                static_cast<unsigned long long>(s.frames),
                static_cast<unsigned long long>(s.malformed));
        appendf(out, ",\"phones\":%zu,\"heard\":%zu,\"silent_suspect\":%zu,"
                     "\"silent_outage\":%zu",
                s.phonesRegistered, s.phonesHeard, s.silentSuspect, s.silentOutage);
        out += ",\"window\":{";
        appendf(out, "\"freezes\":%llu,\"self_shutdowns\":%llu,\"reboots\":%llu,"
                     "\"panics\":%llu,\"multi_bursts\":%llu,\"observed_hours\":",
                static_cast<unsigned long long>(s.window.freezes),
                static_cast<unsigned long long>(s.window.selfShutdowns),
                static_cast<unsigned long long>(s.window.reboots),
                static_cast<unsigned long long>(s.window.panics),
                static_cast<unsigned long long>(s.window.multiBursts));
        appendNumber(out, s.window.observedHours);
        appendf(out, ",\"dumps\":%llu,\"crash_families\":%llu,"
                     "\"top_family_dumps\":%llu,\"top_family\":",
                static_cast<unsigned long long>(s.window.dumps),
                static_cast<unsigned long long>(s.window.crashFamilies),
                static_cast<unsigned long long>(s.window.topFamilyDumps));
        appendQuoted(out, s.window.topFamilyId);
        out += ",\"mtbf_any_hours\":";
        appendNumber(out, s.window.mtbfAnyHours);
        out += ",\"failure_rate_per_khour\":";
        appendNumber(out, s.window.failureRatePerKiloHour);
        out += ",\"laplace_trend\":";
        appendNumber(out, s.window.laplaceTrend);
        out += ",\"forecast_next_window\":";
        appendNumber(out, s.window.forecastNextWindowFailures);
        out += "},\"totals\":{";
        appendf(out, "\"boots\":%llu,\"panics\":%llu,\"freezes\":%llu,"
                     "\"self_shutdowns\":%llu,\"user_shutdowns\":%llu,"
                     "\"low_battery\":%llu,\"manual_off\":%llu,\"user_reports\":%llu}",
                static_cast<unsigned long long>(s.totals.boots),
                static_cast<unsigned long long>(s.totals.panics),
                static_cast<unsigned long long>(s.totals.freezes),
                static_cast<unsigned long long>(s.totals.selfShutdowns),
                static_cast<unsigned long long>(s.totals.userShutdowns),
                static_cast<unsigned long long>(s.totals.lowBatteryShutdowns),
                static_cast<unsigned long long>(s.totals.manualOffBoots),
                static_cast<unsigned long long>(s.totals.userReports));
        appendf(out, ",\"coalescence\":{\"resolved\":%zu,\"related\":%zu,"
                     "\"pending\":%zu},\"multi_bursts\":%llu",
                s.resolvedPanics, s.relatedPanics, s.pendingPanics,
                static_cast<unsigned long long>(s.multiBursts));
        appendf(out, ",\"alerts\":{\"fired\":%llu,\"cleared\":%llu,\"active\":%zu,"
                     "\"active_labels\":",
                static_cast<unsigned long long>(s.alertsFired),
                static_cast<unsigned long long>(s.alertsCleared), s.alertsActive);
        appendStringArray(out, s.activeAlerts);
        out += "},\"silent\":";
        appendStringArray(out, s.silentPhones);
        out += "}\n";
    }
    return out;
}

std::string FleetMonitor::renderAlertLog() const {
    std::string out;
    for (const AlertEvent& event : alerts_.log()) {
        out += event.time.str();
        out += ' ';
        out += toString(event.severity);
        out += ' ';
        out += event.rule;
        if (!event.phone.empty()) {
            out += '/';
            out += event.phone;
        }
        out += event.firing ? " FIRING value=" : " CLEARED value=";
        appendNumber(out, event.value);
        out += '\n';
    }
    return out;
}

std::string FleetMonitor::renderDashboard() const {
    std::string out = "== Fleet health monitor ==\n";
    if (snapshots_.empty()) {
        out += "  no snapshots (nothing ingested)\n";
        return out;
    }
    const Snapshot& last = snapshots_.back();
    const auto coalescence = health_.coalescence();
    const auto& totals = health_.totals();

    appendf(out, "  simulated             %.1f d, %zu snapshots (tick %.1f h, window %.0f h)\n",
            (last.at - sim::TimePoint::origin()).asHoursF() / 24.0,
            snapshots_.size(), config_.tick.asHoursF(),
            config_.health.rateWindow.asHoursF());
    appendf(out, "  ingest                %llu frames -> %llu records (%llu malformed), %zu/%zu phones heard\n",
            static_cast<unsigned long long>(framesSeen_),
            static_cast<unsigned long long>(recordsConsumed_),
            static_cast<unsigned long long>(health_.malformedLines()),
            last.phonesHeard, last.phonesRegistered);
    appendf(out, "  totals                freezes %llu, self-shutdowns %llu, user shutdowns %llu, reboots %llu, panics %llu\n",
            static_cast<unsigned long long>(totals.freezes),
            static_cast<unsigned long long>(totals.selfShutdowns),
            static_cast<unsigned long long>(totals.userShutdowns),
            static_cast<unsigned long long>(totals.boots),
            static_cast<unsigned long long>(totals.panics));
    appendf(out, "  online coalescence    %zu/%zu panics HL-related (%.1f%%), %zu pending; HL with panic %zu/%zu\n",
            coalescence.relatedCount, coalescence.panicsResolved,
            100.0 * coalescence.relatedFraction(), coalescence.pendingPanics,
            coalescence.hlWithPanic, coalescence.hlTotal);
    const auto& bursts = health_.burstLengths();
    appendf(out, "  bursts                %llu bursts, %llu multi-panic (%.1f%%)\n",
            static_cast<unsigned long long>(bursts.total()),
            static_cast<unsigned long long>(health_.multiBursts()),
            bursts.total() == 0
                ? 0.0
                : 100.0 * static_cast<double>(health_.multiBursts()) /
                      static_cast<double>(bursts.total()));
    appendf(out, "  window @ end          freezes %llu, self %llu, panics %llu, MTBF(any) %.1f h, rate %.2f/kh\n",
            static_cast<unsigned long long>(last.window.freezes),
            static_cast<unsigned long long>(last.window.selfShutdowns),
            static_cast<unsigned long long>(last.window.panics),
            last.window.mtbfAnyHours, last.window.failureRatePerKiloHour);
    appendf(out, "  reliability trend     Laplace %+.2f at end; forecast %.0f failures over next %.0f h\n",
            last.window.laplaceTrend, last.window.forecastNextWindowFailures,
            config_.health.rateWindow.asHoursF());
    appendf(out, "  crash families        %llu dumps total; window: %llu dumps in %llu families, top %s (%llu)\n",
            static_cast<unsigned long long>(totals.dumps),
            static_cast<unsigned long long>(last.window.dumps),
            static_cast<unsigned long long>(last.window.crashFamilies),
            last.window.topFamilyId.empty() ? "-" : last.window.topFamilyId.c_str(),
            static_cast<unsigned long long>(last.window.topFamilyDumps));
    appendf(out, "  liveness              %zu silent suspect, %zu silent in outage\n",
            last.silentSuspect, last.silentOutage);
    for (const auto& phone : last.silentPhones) {
        const auto it = presence_.find(phone);
        if (it == presence_.end()) continue;
        const auto lastHeard =
            std::max(it->second.lastIngestAt, it->second.enrollAt);
        appendf(out, "    %-14s %-14s last heard %.1f h before end\n", phone.c_str(),
                std::string{toString(it->second.liveness)}.c_str(),
                (last.at - lastHeard).asHoursF());
    }
    appendf(out, "  alerts                %llu fired, %llu cleared, %zu active\n",
            static_cast<unsigned long long>(alerts_.fired()),
            static_cast<unsigned long long>(alerts_.cleared()),
            alerts_.activeCount());
    // Tail of the alert log; the full log goes to --alerts.
    const auto& log = alerts_.log();
    const std::size_t first = log.size() > 8 ? log.size() - 8 : 0;
    if (first > 0) appendf(out, "    ... %zu earlier events\n", first);
    for (std::size_t i = first; i < log.size(); ++i) {
        const AlertEvent& event = log[i];
        std::string label = event.rule;
        if (!event.phone.empty()) {
            label += '/';
            label += event.phone;
        }
        appendf(out, "    %s %-8s %-32s %s\n", event.time.str().c_str(),
                std::string{toString(event.severity)}.c_str(), label.c_str(),
                event.firing ? "FIRING" : "CLEARED");
    }

    // Windowed failure counts over the campaign, max-pooled per column.
    std::vector<double> failures;
    failures.reserve(snapshots_.size());
    for (const Snapshot& s : snapshots_) {
        failures.push_back(
            static_cast<double>(s.window.freezes + s.window.selfShutdowns));
    }
    const double peak = failures.empty()
                            ? 0.0
                            : *std::max_element(failures.begin(), failures.end());
    appendf(out, "  windowed failures     peak %.0f per %.0f h window\n", peak,
            config_.health.rateWindow.asHoursF());
    out += "    [";
    out += sparkline(failures, 64);
    out += "]\n";
    return out;
}

void FleetMonitor::publishMetrics(obs::MetricsRegistry& registry) const {
    registry.counter("monitor", "frames_consumed", "Frames seen by the ingest tap")
        .inc(framesSeen_);
    registry.counter("monitor", "records_consumed", "Records parsed from the stream")
        .inc(recordsConsumed_);
    registry.counter("monitor", "malformed_lines", "Malformed lines in the stream")
        .inc(health_.malformedLines());
    registry.counter("monitor", "alerts_fired", "Alert FIRING transitions")
        .inc(alerts_.fired());
    registry.counter("monitor", "alerts_cleared", "Alert CLEARED transitions")
        .inc(alerts_.cleared());
    registry.gauge("monitor", "alerts_active", "Alerts firing at campaign end")
        .set(static_cast<double>(alerts_.activeCount()));
    const auto coalescence = health_.coalescence();
    registry.counter("monitor", "panics_resolved", "Panics with a final HL relation")
        .inc(coalescence.panicsResolved);
    registry
        .counter("monitor", "related_panics",
                 "Panics coalesced with a freeze or self-shutdown")
        .inc(coalescence.relatedCount);
    registry.gauge("monitor", "related_fraction", "Related / resolved panics")
        .set(coalescence.relatedFraction());
    registry.counter("monitor", "bursts", "Finalized panic bursts")
        .inc(health_.burstLengths().total());
    registry.counter("monitor", "multi_bursts", "Bursts of length >= 2")
        .inc(health_.multiBursts());
    registry.counter("monitor", "crash_dumps", "Structured crash dumps ingested")
        .inc(health_.totals().dumps);
    registry
        .gauge("monitor", "crash_families_window",
               "Crash families active in the final window")
        .set(snapshots_.empty()
                 ? 0.0
                 : static_cast<double>(snapshots_.back().window.crashFamilies));
    registry
        .gauge("monitor", "top_family_dumps_window",
               "Windowed dump count of the busiest crash family")
        .set(snapshots_.empty()
                 ? 0.0
                 : static_cast<double>(snapshots_.back().window.topFamilyDumps));
    registry
        .gauge("monitor", "window_laplace_trend",
               "Windowed Laplace trend factor at campaign end")
        .set(snapshots_.empty() ? 0.0 : snapshots_.back().window.laplaceTrend);
    registry
        .gauge("monitor", "forecast_failures_window",
               "Forecast failures over the next window-length horizon")
        .set(snapshots_.empty()
                 ? 0.0
                 : snapshots_.back().window.forecastNextWindowFailures);
    registry.gauge("monitor", "snapshots", "Snapshots taken")
        .set(static_cast<double>(snapshots_.size()));
    registry
        .gauge("monitor", "phones_heard",
               "Phones the ingest stream delivered records for")
        .set(snapshots_.empty()
                 ? 0.0
                 : static_cast<double>(snapshots_.back().phonesHeard));
}

std::uint64_t FleetMonitor::approxMemoryBytes() const {
    constexpr std::size_t mapNode = 3 * sizeof(void*);
    std::size_t total = sizeof *this;
    for (const auto& [phone, stream] : streams_) {
        total += phone.size() + sizeof(std::string) + mapNode;
        total += stream.tap.approxMemoryBytes() + stream.lines.approxMemoryBytes();
    }
    for (const auto& entry : presence_) {
        total += entry.first.size() + sizeof(std::string) + sizeof(Presence) + mapNode;
    }
    total += snapshots_.capacity() * sizeof(Snapshot);
    for (const Snapshot& snapshot : snapshots_) {
        total += snapshot.silentPhones.capacity() * sizeof(std::string);
        total += snapshot.activeAlerts.capacity() * sizeof(std::string);
        for (const std::string& name : snapshot.silentPhones) total += name.size();
        for (const std::string& name : snapshot.activeAlerts) total += name.size();
    }
    total += health_.approxMemoryBytes();
    return total;
}

}  // namespace symfail::monitor
