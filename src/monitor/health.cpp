#include "monitor/health.hpp"

#include <algorithm>
#include <cmath>

namespace symfail::monitor {
namespace {

/// Inserts keeping the (almost always already-sorted) deque time-ordered;
/// revealed-event times can trail the watermark by up to one heartbeat
/// period, so the slot is never far from the back.
void insertSorted(std::deque<sim::TimePoint>& events, sim::TimePoint t) {
    events.push_back(t);
    for (std::size_t i = events.size() - 1; i > 0 && events[i - 1] > events[i]; --i) {
        std::swap(events[i - 1], events[i]);
    }
}

void trimBefore(std::deque<sim::TimePoint>& events, sim::TimePoint cutoff) {
    while (!events.empty() && events.front() <= cutoff) events.pop_front();
}

double safeRatio(double hours, std::uint64_t failures) {
    return failures == 0 ? 0.0 : hours / static_cast<double>(failures);
}

}  // namespace

HealthEngine::HealthEngine(HealthConfig config) : config_{config} {}

sim::TimePoint HealthEngine::windowCutoff(sim::TimePoint now) const {
    return now - config_.rateWindow;
}

void HealthEngine::addHl(PhoneState& state, sim::TimePoint time,
                         analysis::PanicRelation kind) {
    // HL reveal order follows event order per phone, so this append keeps
    // the list time-sorted (matching the batch pipeline's sort).
    auto it = state.hls.end();
    while (it != state.hls.begin() && std::prev(it)->time > time) --it;
    state.hls.insert(it, HlEvent{time, kind, false});
}

void HealthEngine::feedPanic(PhoneState& state, sim::TimePoint time) {
    if (state.burstLen == 0 ||
        (time - state.prevPanicAt).asSecondsF() <= config_.burstGapSeconds) {
        ++state.burstLen;
    } else {
        closeBurst(state);
        state.burstLen = 1;
    }
    state.prevPanicAt = time;
}

void HealthEngine::closeBurst(PhoneState& state) {
    if (state.burstLen == 0) return;
    bursts_.add(static_cast<std::int64_t>(state.burstLen));
    if (state.burstLen >= 2) {
        ++multiBursts_;
        insertSorted(windowMultiBursts_, state.prevPanicAt);
    }
    state.burstLen = 0;
}

void HealthEngine::resolvePanic(PhoneState& state, const PendingPanic& panic) {
    // Mirrors analysis::coalesce: nearest HL event within the window wins,
    // later equal-gap events replacing earlier ones.
    auto relation = analysis::PanicRelation::Isolated;
    double best = config_.coalescenceWindowSeconds;
    std::size_t bestIdx = state.hls.size();
    for (std::size_t i = 0; i < state.hls.size(); ++i) {
        const double gap = std::abs((state.hls[i].time - panic.time).asSecondsF());
        if (gap <= best) {
            best = gap;
            bestIdx = i;
        }
    }
    if (bestIdx < state.hls.size()) {
        relation = state.hls[bestIdx].kind;
        if (!state.hls[bestIdx].matched) {
            state.hls[bestIdx].matched = true;
            ++hlMatched_;
        }
    }

    auto& row = byCategory_[panic.category];
    row.category = panic.category;
    ++row.total;
    if (relation == analysis::PanicRelation::Freeze) {
        ++row.toFreeze;
        ++relatedCount_;
    } else if (relation == analysis::PanicRelation::SelfShutdown) {
        ++row.toSelfShutdown;
        ++relatedCount_;
    }
    ++panicsResolved_;
}

void HealthEngine::resolveReady(const std::string& /*phone*/, PhoneState& state) {
    // A pending panic is safe to resolve once no future record of this
    // phone can reveal an HL event inside its coalescence window: an
    // unrevealed HL is later than watermark - heartbeatPeriod.
    const auto window = sim::Duration::fromSecondsF(config_.coalescenceWindowSeconds);
    while (!state.pending.empty() &&
           state.watermark > state.pending.front().time + window +
                                 config_.heartbeatPeriod) {
        resolvePanic(state, state.pending.front());
        state.pending.pop_front();
    }
}

void HealthEngine::onRecord(const std::string& phone,
                            const logger::LogFileEntry& entry) {
    PhoneState& state = phones_[phone];
    sim::TimePoint t{};
    switch (entry.type) {
        case logger::LogFileEntry::Type::Panic: t = entry.panic.time; break;
        case logger::LogFileEntry::Type::Boot: t = entry.boot.time; break;
        case logger::LogFileEntry::Type::UserReport: t = entry.userReport.time; break;
        case logger::LogFileEntry::Type::Meta: t = entry.meta.time; break;
        case logger::LogFileEntry::Type::Dump: t = entry.dump.time; break;
    }
    if (!state.heard) {
        state.heard = true;
        state.firstRecordAt = t;
        state.watermark = t;
    }
    state.watermark = std::max(state.watermark, t);
    ++totals_.records;

    switch (entry.type) {
        case logger::LogFileEntry::Type::Meta:
            break;
        case logger::LogFileEntry::Type::UserReport:
            ++totals_.userReports;
            break;
        case logger::LogFileEntry::Type::Dump:
            // Dumps feed the family-scoped windowed counts only; the
            // paired PANIC record carries the failure semantics, so the
            // exactness contract with the batch pipeline is untouched.
            ++totals_.dumps;
            insertSorted(
                windowFamilies_[crash::familyIdFor(crash::signatureOf(entry.dump))],
                t);
            break;
        case logger::LogFileEntry::Type::Panic: {
            ++totals_.panics;
            ++state.panics;
            insertSorted(state.windowPanics, t);
            feedPanic(state, t);
            state.pending.push_back(PendingPanic{t, entry.panic.panic.category});
            break;
        }
        case logger::LogFileEntry::Type::Boot: {
            ++totals_.boots;
            ++state.reboots;
            insertSorted(state.windowBoots, t);
            const auto& boot = entry.boot;
            switch (boot.prior) {
                case logger::PriorShutdown::None:
                    break;
                case logger::PriorShutdown::Freeze:
                    ++totals_.freezes;
                    ++state.freezes;
                    insertSorted(state.windowFreezes, boot.lastBeatAt);
                    addHl(state, boot.lastBeatAt, analysis::PanicRelation::Freeze);
                    break;
                case logger::PriorShutdown::Reboot: {
                    // The paper's discriminator: off-durations under the
                    // threshold are self-shutdowns, the rest deliberate.
                    const double off = (boot.time - boot.lastBeatAt).asSecondsF();
                    if (off < config_.selfShutdownThresholdSeconds) {
                        ++totals_.selfShutdowns;
                        ++state.selfShutdowns;
                        insertSorted(state.windowSelf, boot.lastBeatAt);
                        addHl(state, boot.lastBeatAt,
                              analysis::PanicRelation::SelfShutdown);
                    } else {
                        ++totals_.userShutdowns;
                    }
                    break;
                }
                case logger::PriorShutdown::LowBattery:
                    ++totals_.lowBatteryShutdowns;
                    break;
                case logger::PriorShutdown::ManualOff:
                    ++totals_.manualOffBoots;
                    break;
            }
            break;
        }
    }
    resolveReady(phone, state);
}

void HealthEngine::trimTo(sim::TimePoint now) {
    const auto cutoff = windowCutoff(now);
    for (auto& [name, state] : phones_) {
        trimBefore(state.windowFreezes, cutoff);
        trimBefore(state.windowSelf, cutoff);
        trimBefore(state.windowBoots, cutoff);
        trimBefore(state.windowPanics, cutoff);
    }
    trimBefore(windowMultiBursts_, cutoff);
    for (auto it = windowFamilies_.begin(); it != windowFamilies_.end();) {
        trimBefore(it->second, cutoff);
        it = it->second.empty() ? windowFamilies_.erase(it) : std::next(it);
    }
}

void HealthEngine::finalize() {
    if (finalized_) return;
    finalized_ = true;
    for (auto& [name, state] : phones_) {
        while (!state.pending.empty()) {
            resolvePanic(state, state.pending.front());
            state.pending.pop_front();
        }
        closeBurst(state);
    }
}

WindowStats HealthEngine::windowStats(sim::TimePoint now) const {
    WindowStats stats;
    const auto cutoff = windowCutoff(now);
    // Laplace trend inputs: each windowed failure's relative position in
    // its phone's observed slice of the window.
    double positionSum = 0.0;
    std::uint64_t positioned = 0;
    for (const auto& [name, state] : phones_) {
        stats.freezes += state.windowFreezes.size();
        stats.selfShutdowns += state.windowSelf.size();
        stats.reboots += state.windowBoots.size();
        stats.panics += state.windowPanics.size();
        if (state.heard) {
            const auto lo = std::max(state.firstRecordAt, cutoff);
            const auto hi = std::min(state.watermark, now);
            if (hi > lo) {
                stats.observedHours += (hi - lo).asHoursF();
                const double span = (hi - lo).asSecondsF();
                const auto position = [&](sim::TimePoint t) {
                    const double v = (t - lo).asSecondsF() / span;
                    positionSum += std::clamp(v, 0.0, 1.0);
                    ++positioned;
                };
                for (const auto t : state.windowFreezes) position(t);
                for (const auto t : state.windowSelf) position(t);
            }
        }
    }
    stats.multiBursts = windowMultiBursts_.size();
    for (const auto& [familyId, times] : windowFamilies_) {
        if (times.empty()) continue;
        ++stats.crashFamilies;
        stats.dumps += times.size();
        // The map iterates in id order, so ties keep the smaller id —
        // deterministic.
        if (times.size() > stats.topFamilyDumps) {
            stats.topFamilyDumps = times.size();
            stats.topFamilyId = familyId;
        }
    }
    stats.mtbfFreezeHours = safeRatio(stats.observedHours, stats.freezes);
    stats.mtbfSelfShutdownHours = safeRatio(stats.observedHours, stats.selfShutdowns);
    const std::uint64_t failures = stats.freezes + stats.selfShutdowns;
    stats.mtbfAnyHours = safeRatio(stats.observedHours, failures);
    stats.failureRatePerKiloHour =
        stats.observedHours <= 0.0
            ? 0.0
            : 1000.0 * static_cast<double>(failures) / stats.observedHours;
    if (positioned > 0) {
        const double n = static_cast<double>(positioned);
        // Laplace trend: under a constant rate the positions are U(0,1),
        // so the standardized mean is ~N(0,1).
        stats.laplaceTrend =
            (positionSum - n / 2.0) / std::sqrt(n / 12.0);
        // Linear intensity matched to (count, mean position): the slope
        // factor gamma in [-2, 2] keeps the fitted rate nonnegative
        // inside the window; integrating the extrapolation over the next
        // window-length horizon gives n * (1 + gamma).
        const double gamma =
            std::clamp(12.0 * (positionSum / n - 0.5), -2.0, 2.0);
        stats.forecastNextWindowFailures = std::max(0.0, n * (1.0 + gamma));
    }
    return stats;
}

CoalescenceCounts HealthEngine::coalescence() const {
    CoalescenceCounts counts;
    counts.panicsResolved = panicsResolved_;
    counts.relatedCount = relatedCount_;
    counts.hlWithPanic = hlMatched_;
    for (const auto& [name, state] : phones_) {
        counts.pendingPanics += state.pending.size();
        counts.hlTotal += state.hls.size();
    }
    counts.byCategory.reserve(byCategory_.size());
    for (const auto& [category, row] : byCategory_) counts.byCategory.push_back(row);
    return counts;
}

std::vector<PhoneHealthView> HealthEngine::phones(sim::TimePoint now) const {
    std::vector<PhoneHealthView> views;
    views.reserve(phones_.size());
    const auto cutoff = windowCutoff(now);
    for (const auto& [name, state] : phones_) {
        PhoneHealthView view;
        view.name = name;
        view.freezes = state.freezes;
        view.selfShutdowns = state.selfShutdowns;
        view.panics = state.panics;
        view.reboots = state.reboots;
        view.windowFreezes = state.windowFreezes.size();
        view.windowSelfShutdowns = state.windowSelf.size();
        view.windowPanics = state.windowPanics.size();
        if (state.heard) {
            const auto lo = std::max(state.firstRecordAt, cutoff);
            const auto hi = std::min(state.watermark, now);
            if (hi > lo) view.windowObservedHours = (hi - lo).asHoursF();
        }
        view.windowMtbfAnyHours = safeRatio(
            view.windowObservedHours, view.windowFreezes + view.windowSelfShutdowns);
        view.openBurstLen = state.burstLen;
        view.lastRecordAt = state.watermark;
        views.push_back(std::move(view));
    }
    return views;
}

std::optional<PhoneHealthView> HealthEngine::phone(const std::string& name,
                                                   sim::TimePoint now) const {
    for (auto& view : phones(now)) {
        if (view.name == name) return view;
    }
    return std::nullopt;
}

std::size_t HealthEngine::approxMemoryBytes() const {
    constexpr std::size_t mapNode = 3 * sizeof(void*);
    std::size_t total = sizeof *this;
    for (const auto& [phone, state] : phones_) {
        total += phone.size() + sizeof(std::string) + sizeof(PhoneState) + mapNode;
        total += state.hls.capacity() * sizeof(HlEvent);
        total += state.pending.size() * sizeof(PendingPanic);
        total += (state.windowFreezes.size() + state.windowSelf.size() +
                  state.windowBoots.size() + state.windowPanics.size()) *
                 sizeof(sim::TimePoint);
    }
    total += byCategory_.size() *
             (sizeof(symbos::PanicCategory) +
              sizeof(analysis::CategoryRelationRow) + mapNode);
    total += windowMultiBursts_.size() * sizeof(sim::TimePoint);
    for (const auto& [family, window] : windowFamilies_) {
        total += family.size() + sizeof(std::string) + mapNode +
                 window.size() * sizeof(sim::TimePoint);
    }
    return total;
}

}  // namespace symfail::monitor
