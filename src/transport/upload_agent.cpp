#include "transport/upload_agent.hpp"

#include <algorithm>

#include "obs/provenance.hpp"
#include "symbos/err.hpp"
#include "symbos/kernel.hpp"

namespace symfail::transport {

UploadAgent::UploadAgent(phone::PhoneDevice& device, logger::FailureLogger& logger,
                         Channel& dataChannel, Channel& ackChannel,
                         UploadPolicy policy, std::uint64_t seed)
    : device_{&device},
      logger_{&logger},
      dataChannel_{&dataChannel},
      ackChannel_{&ackChannel},
      policy_{policy},
      rng_{seed} {
    device_->addBootHook([this]() { onBoot(); });
    device_->addPowerDownHook([this]() { teardown(); });
    ackChannel_->setReceiver(
        [this](const std::string& bytes) { onAckBytes(bytes); });
}

UploadAgent::~UploadAgent() {
    teardown();
}

std::size_t UploadAgent::ackedSegments() const {
    return ackedBytes_.size();
}

void UploadAgent::onBoot() {
    attempt_ = 0;
    pid_ = device_->kernel().createProcess("UploadAgent",
                                           symbos::ProcessKind::SystemServer);
    auto& scheduler = device_->kernel().schedulerOf(pid_);
    ao_ = std::make_unique<symbos::FunctionAo>(
        scheduler, "upload-agent",
        [this](symbos::ExecContext& ctx, int status) {
            if (status != symbos::KErrNone) return;
            runRound(ctx);
        });
    timer_ = std::make_unique<symbos::RTimer>(*ao_);
    symbos::RTimer* timer = timer_.get();
    ao_->setCancelFn([timer]() { timer->cancel(); });
    device_->kernel().runInProcess(pid_, [this](symbos::ExecContext& ctx) {
        timer_->after(ctx, policy_.uploadPeriod);
    });
}

void UploadAgent::teardown() {
    timer_.reset();
    ao_.reset();
    pid_ = 0;
    attempt_ = 0;
}

void UploadAgent::onAckBytes(std::string_view bytes) {
    const auto ack = decodeAck(bytes);
    if (!ack || ack->phone != device_->name()) {
        ++stats_.staleAcks;
        return;
    }
    ++stats_.acksReceived;
    if (auto* trace = device_->simulator().traceSink()) {
        const obs::TraceArg args[] = {{"seq", ack->seq},
                                      {"bytes", ack->payloadBytes}};
        trace->instant(device_->traceTrack(), "transport", "ack",
                       device_->simulator().now(), args);
    }
    auto& acked = ackedBytes_[ack->seq];
    acked = std::max(acked, ack->payloadBytes);
}

sim::Duration UploadAgent::nextDelay(bool pendingRemain) {
    if (!pendingRemain || !policy_.retriesEnabled) {
        attempt_ = 0;
        return policy_.uploadPeriod;
    }
    if (attempt_ >= policy_.maxRetriesPerRound) {
        // Budget exhausted: give up until the next regular round (which
        // re-offers everything unacknowledged).
        ++stats_.retryBudgetExhausted;
        if (auto* trace = device_->simulator().traceSink()) {
            trace->instant(device_->traceTrack(), "transport",
                           "retry-budget-exhausted", device_->simulator().now());
        }
        attempt_ = 0;
        return policy_.uploadPeriod;
    }
    sim::Duration delay = policy_.retryBase;
    for (int i = 0; i < attempt_; ++i) {
        delay = delay * 2;
        if (delay >= policy_.retryMax) break;
    }
    delay = std::min(delay, policy_.retryMax);
    ++attempt_;
    const double jitter =
        rng_.uniform(1.0 - policy_.retryJitter, 1.0 + policy_.retryJitter);
    const auto wait = sim::Duration::fromSecondsF(delay.asSecondsF() * jitter);
    stats_.backoffWait += wait;
    return wait;
}

void UploadAgent::runRound(const symbos::ExecContext& ctx) {
    ++stats_.rounds;
    const std::string& content = logger_->logFileContent();
    const auto frames =
        chunkLogContent(device_->name(), content, policy_.chunkPayloadBytes);
    if (provenance_ != nullptr) {
        provenance_->snapshotEnqueued(device_->name(), content.size(),
                                      device_->simulator().now());
    }

    std::size_t sentThisRound = 0;
    std::size_t pending = 0;
    std::uint64_t frameOffset = 0;  ///< Log offset of the current frame.
    for (const auto& frame : frames) {
        const std::uint64_t offset = frameOffset;
        frameOffset += frame.payload.size();
        const auto ackedIt = ackedBytes_.find(frame.seq);
        const bool satisfied =
            ackedIt != ackedBytes_.end() && ackedIt->second >= frame.payload.size();
        if (satisfied) continue;
        ++pending;
        if (sentThisRound >= policy_.maxBatchFrames) continue;
        ++sentThisRound;

        auto& sent = sentBytes_[frame.seq];
        const bool retransmit = sent >= frame.payload.size();
        if (retransmit) ++stats_.retransmits;
        sent = std::max(sent, static_cast<std::uint32_t>(frame.payload.size()));
        if (provenance_ != nullptr) {
            provenance_->segmentSent(device_->name(), frame.seq, offset,
                                     frame.payload.size(), retransmit,
                                     device_->simulator().now());
        }

        const std::string bytes = encodeFrame(frame);
        ++stats_.framesSent;
        stats_.bytesSent += bytes.size();
        if (auto* trace = device_->simulator().traceSink()) {
            const obs::TraceArg args[] = {{"seq", frame.seq},
                                          {"bytes", bytes.size()},
                                          {"retransmit", retransmit}};
            trace->instant(device_->traceTrack(), "transport", "segment-send",
                           device_->simulator().now(), args);
        }
        dataChannel_->send(bytes);
    }

    // Acks for this batch are still in flight; re-check at the next firing.
    // A pure ack-wait uses the retry clock too: if everything is acked by
    // then, that firing degenerates to a no-op round.
    timer_->after(ctx, nextDelay(pending > 0));
}

}  // namespace symfail::transport
