// Simulated unreliable transfer channels.
//
// Section 5 of the paper has the Log Files harvested off the phones over
// real-world channels — memory card swaps, Bluetooth to a nearby PC, GPRS
// to the collection point.  None of those are lossless: frames disappear,
// arrive twice, arrive out of order, and whole outage windows (no
// coverage, PC off) swallow everything sent into them.  A Channel models
// one such path deterministically off the simulation kernel: every draw
// comes from its own forked Rng and every delivery is a simulator event,
// so a campaign with transport enabled replays bit-identically.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "simkernel/histogram.hpp"
#include "simkernel/rng.hpp"
#include "simkernel/simulator.hpp"

namespace symfail::obs {
class ProvenanceTracker;
}  // namespace symfail::obs

namespace symfail::transport {

/// Shared geometry for delivery-latency histograms: log-scale bins from
/// 50 ms to ~11.6 days, 6 bins per decade.  Log spacing resolves the
/// sub-second Bluetooth/GPRS mass and the multi-hour memory-card and
/// outage-retry tails in one histogram (the old linear 0–120 s bins sent
/// every memory-card delivery to the overflow bucket).
[[nodiscard]] sim::Histogram makeDeliveryLatencyHistogram();

/// A scheduled window during which the channel is down (mid-campaign GPRS
/// blackout, collection PC switched off).
struct OutageWindow {
    sim::TimePoint start;
    sim::TimePoint end;
    [[nodiscard]] bool contains(sim::TimePoint t) const { return t >= start && t < end; }
};

/// Channel failure/latency model.
struct ChannelConfig {
    std::string name = "gprs";
    double lossProb = 0.05;     ///< Frame silently dropped.
    double dupProb = 0.02;      ///< Frame delivered twice (independent latency).
    double reorderProb = 0.10;  ///< Frame held back long enough to overtake.
    /// Base one-way latency (lognormal by median/sigma).
    sim::Duration latencyMedian = sim::Duration::millis(900);
    double latencySigma = 0.6;
    /// Extra hold-back applied to reordered frames (lognormal median).
    sim::Duration reorderHoldMedian = sim::Duration::seconds(8);
    /// Frames sent inside an outage window are lost with this probability
    /// (1.0: a hard blackout).
    double outageLossProb = 1.0;
    std::vector<OutageWindow> outages;

    /// Presets for the three harvest paths the paper's infrastructure used.
    [[nodiscard]] static ChannelConfig gprs();
    [[nodiscard]] static ChannelConfig bluetooth();
    [[nodiscard]] static ChannelConfig memoryCard();
};

/// Wire accounting for one channel.
struct ChannelStats {
    std::uint64_t framesOffered{0};
    std::uint64_t framesLost{0};
    std::uint64_t framesDuplicated{0};
    std::uint64_t framesDelivered{0};
    std::uint64_t framesReordered{0};
    std::uint64_t outageDrops{0};
    std::uint64_t bytesOffered{0};
    std::uint64_t bytesDelivered{0};
    /// One-way delivery latency in seconds (see makeDeliveryLatencyHistogram).
    sim::Histogram latency{makeDeliveryLatencyHistogram()};
};

/// One simulated unidirectional channel.
class Channel {
public:
    /// Receiver callback: raw frame bytes as they arrive.
    using Receiver = std::function<void(const std::string& bytes)>;

    Channel(sim::Simulator& simulator, ChannelConfig config, std::uint64_t seed);
    Channel(const Channel&) = delete;
    Channel& operator=(const Channel&) = delete;

    void setReceiver(Receiver receiver) { receiver_ = std::move(receiver); }

    /// Trace track this channel's wire events land on (the owning phone's
    /// track; 0 — the "sim" track — when never set).
    void setTraceTrack(std::uint32_t track) { traceTrack_ = track; }

    /// Attaches provenance tracking: SEGv1 frames report loss, duplication
    /// and delivery per segment (acks and malformed bytes are ignored).
    /// nullptr detaches; the tracker is not owned.
    void setProvenance(obs::ProvenanceTracker* tracker) { provenance_ = tracker; }

    /// Offers bytes to the channel: they are lost, duplicated, delayed or
    /// delivered per the model.  Safe without a receiver (bytes vanish as
    /// if lost, still counted as offered).
    void send(std::string bytes);

    [[nodiscard]] bool inOutage(sim::TimePoint t) const;
    [[nodiscard]] const ChannelStats& stats() const { return stats_; }
    [[nodiscard]] const ChannelConfig& config() const { return config_; }

    /// Adds an outage window after construction.  The osfault radio plane
    /// uses this to turn modem events (link drops, resets) into channel
    /// outages, so radio faults flow through the same outage accounting as
    /// scheduled blackouts instead of bypassing the transport model.
    void pushOutage(OutageWindow window) {
        config_.outages.push_back(window);
    }

    /// Approximate heap footprint of the channel object.  In-flight
    /// frames live in scheduled simulator closures and are accounted to
    /// the simkernel's event queue, not here.
    [[nodiscard]] std::size_t approxMemoryBytes() const {
        return sizeof *this + config_.outages.capacity() * sizeof(OutageWindow);
    }

private:
    void deliverAfter(const std::string& bytes, sim::Duration delay);

    sim::Simulator* simulator_;
    ChannelConfig config_;
    sim::Rng rng_;
    Receiver receiver_;
    ChannelStats stats_;
    std::uint32_t traceTrack_{0};
    obs::ProvenanceTracker* provenance_{nullptr};
};

}  // namespace symfail::transport
