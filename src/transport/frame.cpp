#include "transport/frame.hpp"

#include <array>
#include <charconv>

namespace symfail::transport {
namespace {

constexpr std::string_view kFrameMagic = "SEGv1";
constexpr std::string_view kAckMagic = "ACKv1";

std::array<std::uint32_t, 256> makeCrcTable() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit) {
            c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
        }
        table[i] = c;
    }
    return table;
}

std::optional<std::uint64_t> parseU64(std::string_view field) {
    std::uint64_t value = 0;
    const auto* end = field.data() + field.size();
    const auto [ptr, ec] = std::from_chars(field.data(), end, value);
    if (ec != std::errc{} || ptr != end) return std::nullopt;
    return value;
}

std::optional<std::uint32_t> parseHex32(std::string_view field) {
    std::uint32_t value = 0;
    const auto* end = field.data() + field.size();
    const auto [ptr, ec] = std::from_chars(field.data(), end, value, 16);
    if (ec != std::errc{} || ptr != end) return std::nullopt;
    return value;
}

std::string toHex(std::uint32_t value) {
    char buf[9];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value, 16);
    (void)ec;
    return std::string(buf, ptr);
}

/// Splits a header into exactly `n` '|'-separated fields; nullopt when the
/// field count is off (damaged delimiter, spliced frames).
std::optional<std::vector<std::string_view>> splitExact(std::string_view header,
                                                        std::size_t n) {
    std::vector<std::string_view> fields;
    std::size_t start = 0;
    while (true) {
        const auto pos = header.find('|', start);
        if (pos == std::string_view::npos) {
            fields.push_back(header.substr(start));
            break;
        }
        fields.push_back(header.substr(start, pos - start));
        start = pos + 1;
    }
    if (fields.size() != n) return std::nullopt;
    return fields;
}

/// CRC input for a frame: every header field that matters, then payload.
std::string crcInputFrame(const Frame& frame) {
    std::string input = frame.phone;
    input += '|';
    input += std::to_string(frame.seq);
    input += '|';
    input += std::to_string(frame.segCount);
    input += '\n';
    input += frame.payload;
    return input;
}

std::string crcInputAck(const Ack& ack) {
    std::string input = ack.phone;
    input += '|';
    input += std::to_string(ack.seq);
    input += '|';
    input += std::to_string(ack.payloadBytes);
    return input;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
    static const auto table = makeCrcTable();
    std::uint32_t crc = 0xFFFFFFFFu;
    for (const char ch : data) {
        crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
    }
    return crc ^ 0xFFFFFFFFu;
}

std::string encodeFrame(const Frame& frame) {
    std::string out{kFrameMagic};
    out += '|';
    out += frame.phone;
    out += '|';
    out += std::to_string(frame.seq);
    out += '|';
    out += std::to_string(frame.segCount);
    out += '|';
    out += std::to_string(frame.payload.size());
    out += '|';
    out += toHex(crc32(crcInputFrame(frame)));
    out += '\n';
    out += frame.payload;
    return out;
}

std::optional<Frame> decodeFrame(std::string_view bytes) {
    const auto headerEnd = bytes.find('\n');
    if (headerEnd == std::string_view::npos) return std::nullopt;
    const auto fields = splitExact(bytes.substr(0, headerEnd), 6);
    if (!fields || (*fields)[0] != kFrameMagic) return std::nullopt;

    Frame frame;
    frame.phone = std::string{(*fields)[1]};
    const auto seq = parseU64((*fields)[2]);
    const auto segCount = parseU64((*fields)[3]);
    const auto payloadBytes = parseU64((*fields)[4]);
    const auto crc = parseHex32((*fields)[5]);
    if (!seq || !segCount || !payloadBytes || !crc) return std::nullopt;
    if (*seq > 0xFFFFFFFFull || *segCount > 0xFFFFFFFFull) return std::nullopt;
    frame.seq = static_cast<std::uint32_t>(*seq);
    frame.segCount = static_cast<std::uint32_t>(*segCount);

    const std::string_view payload = bytes.substr(headerEnd + 1);
    if (payload.size() != *payloadBytes) return std::nullopt;  // truncated/spliced
    frame.payload = std::string{payload};
    if (crc32(crcInputFrame(frame)) != *crc) return std::nullopt;
    return frame;
}

std::optional<FrameHeader> parseFrameHeader(std::string_view bytes) {
    const auto headerEnd = bytes.find('\n');
    if (headerEnd == std::string_view::npos) return std::nullopt;
    const auto fields = splitExact(bytes.substr(0, headerEnd), 6);
    if (!fields || (*fields)[0] != kFrameMagic) return std::nullopt;
    const auto seq = parseU64((*fields)[2]);
    const auto payloadBytes = parseU64((*fields)[4]);
    if (!seq || !payloadBytes || *seq > 0xFFFFFFFFull) return std::nullopt;
    FrameHeader header;
    header.phone = (*fields)[1];
    header.seq = static_cast<std::uint32_t>(*seq);
    header.payloadBytes = *payloadBytes;
    return header;
}

std::string encodeAck(const Ack& ack) {
    std::string out{kAckMagic};
    out += '|';
    out += ack.phone;
    out += '|';
    out += std::to_string(ack.seq);
    out += '|';
    out += std::to_string(ack.payloadBytes);
    out += '|';
    out += toHex(crc32(crcInputAck(ack)));
    return out;
}

std::optional<Ack> decodeAck(std::string_view bytes) {
    const auto fields = splitExact(bytes, 5);
    if (!fields || (*fields)[0] != kAckMagic) return std::nullopt;
    Ack ack;
    ack.phone = std::string{(*fields)[1]};
    const auto seq = parseU64((*fields)[2]);
    const auto payloadBytes = parseU64((*fields)[3]);
    const auto crc = parseHex32((*fields)[4]);
    if (!seq || !payloadBytes || !crc) return std::nullopt;
    if (*seq > 0xFFFFFFFFull || *payloadBytes > 0xFFFFFFFFull) return std::nullopt;
    ack.seq = static_cast<std::uint32_t>(*seq);
    ack.payloadBytes = static_cast<std::uint32_t>(*payloadBytes);
    if (crc32(crcInputAck(ack)) != *crc) return std::nullopt;
    return ack;
}

std::vector<Frame> chunkLogContent(const std::string& phone, std::string_view content,
                                   std::size_t payloadBytes) {
    if (payloadBytes == 0) payloadBytes = 1;
    std::vector<Frame> frames;
    std::string current;
    std::size_t start = 0;
    const auto flush = [&]() {
        if (current.empty()) return;
        Frame frame;
        frame.phone = phone;
        frame.seq = static_cast<std::uint32_t>(frames.size());
        frame.payload = std::move(current);
        frames.push_back(std::move(frame));
        current.clear();
    };
    while (start < content.size()) {
        auto lineEnd = content.find('\n', start);
        // A torn final line (no trailing '\n') still ships; the parser
        // already treats it as a torn write.
        const std::size_t stop =
            lineEnd == std::string_view::npos ? content.size() : lineEnd + 1;
        const std::string_view line = content.substr(start, stop - start);
        if (!current.empty() && current.size() + line.size() > payloadBytes) flush();
        current += line;
        if (current.size() >= payloadBytes) flush();
        start = stop;
    }
    flush();
    for (auto& frame : frames) {
        frame.segCount = static_cast<std::uint32_t>(frames.size());
    }
    return frames;
}

}  // namespace symfail::transport
