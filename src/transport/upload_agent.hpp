// The per-phone upload agent.
//
// A Symbian-style active object (one background process per phone, a
// FunctionAo re-arming an RTimer — the same periodic-service idiom as the
// logger's detectors) that carries the Log File to the collection server
// over an unreliable channel:
//
//   * each round it snapshots the Log File, chunks it into CRC-framed,
//     sequence-numbered segments (transport/frame.hpp) and sends every
//     segment the server has not yet acknowledged, up to a batch limit;
//   * unacknowledged segments are retransmitted with exponential backoff
//     plus jitter, up to a per-round retry budget; when the budget runs
//     out the agent gives up until the next regular round (old segments
//     are re-offered forever — only campaign end makes loss permanent);
//   * acknowledgements arrive over their own lossy channel; a lost ack
//     causes a retransmit, which the server answers with a fresh ack
//     (duplicate suppression makes this harmless).
//
// The agent lives and dies with the phone: its AO is created at boot and
// torn down on every power loss, so a dead phone stops uploading — while
// everything already delivered stays on the server, which is the whole
// point of off-device collection.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string_view>

#include "logger/logger.hpp"
#include "phone/device.hpp"
#include "simkernel/time.hpp"
#include "symbos/function_ao.hpp"
#include "symbos/timer.hpp"
#include "transport/channel.hpp"
#include "transport/frame.hpp"

namespace symfail::transport {

/// Upload scheduling and retry policy.
struct UploadPolicy {
    sim::Duration uploadPeriod = sim::Duration::hours(6);
    std::size_t chunkPayloadBytes = 2048;
    std::size_t maxBatchFrames = 64;
    bool retriesEnabled = true;
    sim::Duration retryBase = sim::Duration::seconds(45);
    sim::Duration retryMax = sim::Duration::minutes(30);
    /// Uniform jitter applied to every retry delay: factor in
    /// [1-jitter, 1+jitter].  Keeps a fleet's retries from phase-locking.
    double retryJitter = 0.3;
    int maxRetriesPerRound = 8;
};

/// Agent-side effort accounting.
struct UploadAgentStats {
    std::uint64_t rounds{0};
    std::uint64_t framesSent{0};
    std::uint64_t retransmits{0};
    std::uint64_t bytesSent{0};
    std::uint64_t acksReceived{0};
    std::uint64_t staleAcks{0};
    std::uint64_t retryBudgetExhausted{0};
    /// Simulated time spent sitting in exponential-backoff waits (jitter
    /// included); regular upload-period waits are not counted.
    sim::Duration backoffWait{};
};

/// One phone's uploader.
class UploadAgent {
public:
    /// `dataChannel` carries frames to the server; `ackChannel` carries
    /// acks back (the agent installs itself as its receiver).
    UploadAgent(phone::PhoneDevice& device, logger::FailureLogger& logger,
                Channel& dataChannel, Channel& ackChannel, UploadPolicy policy,
                std::uint64_t seed);
    ~UploadAgent();
    UploadAgent(const UploadAgent&) = delete;
    UploadAgent& operator=(const UploadAgent&) = delete;

    [[nodiscard]] const UploadAgentStats& stats() const { return stats_; }
    [[nodiscard]] const UploadPolicy& policy() const { return policy_; }
    /// Segments fully acknowledged at their current length.
    [[nodiscard]] std::size_t ackedSegments() const;

    /// Attaches provenance tracking: each round stamps its chunking
    /// snapshot (enqueued) and every transmitted segment (uploaded).
    /// nullptr detaches; the tracker is not owned.
    void setProvenance(obs::ProvenanceTracker* tracker) { provenance_ = tracker; }

    /// Approximate heap footprint of the agent: the per-segment ack/sent
    /// maps plus the per-boot AO machinery.
    [[nodiscard]] std::size_t approxMemoryBytes() const {
        constexpr std::size_t node =
            sizeof(std::pair<std::uint32_t, std::uint32_t>) + 3 * sizeof(void*);
        return sizeof *this + (ackedBytes_.size() + sentBytes_.size()) * node +
               (ao_ != nullptr ? sizeof(symbos::FunctionAo) : 0) +
               (timer_ != nullptr ? sizeof(symbos::RTimer) : 0);
    }

private:
    void onBoot();
    void teardown();
    void onAckBytes(std::string_view bytes);
    /// One timer firing: send what is pending, then re-arm.
    void runRound(const symbos::ExecContext& ctx);
    [[nodiscard]] sim::Duration nextDelay(bool pendingRemain);

    phone::PhoneDevice* device_;
    logger::FailureLogger* logger_;
    Channel* dataChannel_;
    Channel* ackChannel_;
    UploadPolicy policy_;
    sim::Rng rng_;

    // Per-boot AO machinery (mirrors the logger's daemon lifecycle).
    symbos::ProcessId pid_{0};
    std::unique_ptr<symbos::FunctionAo> ao_;
    std::unique_ptr<symbos::RTimer> timer_;

    /// Bytes acknowledged per segment index (the open tail segment is
    /// re-sent whenever it outgrows its acked length).
    std::map<std::uint32_t, std::uint32_t> ackedBytes_;
    /// Bytes already transmitted at least once per segment, to classify a
    /// send as first transmission vs retransmit.
    std::map<std::uint32_t, std::uint32_t> sentBytes_;
    int attempt_{0};  ///< Retry attempt within the current round; 0 = fresh round.

    UploadAgentStats stats_;
    obs::ProvenanceTracker* provenance_{nullptr};
};

}  // namespace symfail::transport
