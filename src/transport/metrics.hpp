// Transport metrics: what the ingestion pipeline did to get the logs in.
//
// Aggregates agent-side effort (attempts, retransmits, retry budget
// exhaustion), wire accounting (loss, duplication, reordering, bytes,
// delivery-latency histogram), server-side reassembly accounting, and the
// end-to-end outcome (per-phone coverage, records delivered vs injected).
// Rendered as the `transport` section of the CLI report.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.hpp"
#include "simkernel/histogram.hpp"
#include "transport/channel.hpp"  // makeDeliveryLatencyHistogram

namespace symfail::transport {

/// Fleet-level transport accounting for one campaign.
struct TransportReport {
    bool enabled{false};
    bool retriesEnabled{true};

    // Agent side.
    std::uint64_t uploadRounds{0};
    std::uint64_t framesSent{0};
    std::uint64_t retransmits{0};
    std::uint64_t retryBudgetExhausted{0};
    std::uint64_t acksReceived{0};
    std::uint64_t staleAcks{0};
    std::uint64_t bytesSent{0};
    /// Simulated time the fleet's agents spent in backoff waits.
    double backoffWaitSeconds{0.0};

    // Wire side (data + ack channels combined).
    std::uint64_t framesLost{0};
    std::uint64_t framesDuplicated{0};
    std::uint64_t framesReordered{0};
    std::uint64_t outageDrops{0};
    std::uint64_t bytesOnWire{0};
    std::uint64_t framesDelivered{0};
    std::uint64_t bytesDelivered{0};
    sim::Histogram deliveryLatency{makeDeliveryLatencyHistogram()};

    // Server side.
    std::uint64_t framesRejected{0};
    std::uint64_t duplicateFrames{0};
    std::uint64_t segmentsStored{0};

    // End-to-end outcome.
    std::uint64_t recordsInjected{0};   ///< Records in the phones' final Log Files.
    std::uint64_t recordsDelivered{0};  ///< Records parseable from reassembled logs.
    std::uint64_t payloadBytesDelivered{0};
    std::map<std::string, double> coverageByPhone;  ///< Segment coverage, [0,1].

    /// Delivered records / injected records (1.0 when nothing was injected).
    [[nodiscard]] double deliveryRatio() const;
    /// Useful payload bytes per wire byte (retransmits and framing are the
    /// overhead).
    [[nodiscard]] double goodput() const;
    /// Retransmitted frames / total frames sent.
    [[nodiscard]] double retransmitOverhead() const;
};

/// Renders the CLI `transport` section.
[[nodiscard]] std::string renderTransportReport(const TransportReport& report);

/// Publishes the report into `registry` under the "transport" namespace:
/// counters for the agent/wire/server tallies, per-phone coverage gauges
/// (labeled phone="..."), and the delivery-latency histogram.
void publishTransportMetrics(const TransportReport& report,
                             obs::MetricsRegistry& registry);

}  // namespace symfail::transport
