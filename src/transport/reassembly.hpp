// Server-side segment reassembly.
//
// The collection server receives CRC-framed segments in whatever order
// (and multiplicity) the channels produce, keeps a per-phone chunk map,
// and reconstructs the best-effort Log File even when segments are
// permanently lost.  A gap never fuses the half-records on either side:
// reconstruction inserts a newline at every discontinuity, so damage
// stays visible as malformed lines (which the analysis already counts)
// instead of silently becoming a plausible-but-wrong record.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "transport/frame.hpp"

namespace symfail::transport {

/// Ingestion accounting across all phones.
struct ReassemblyStats {
    std::uint64_t framesReceived{0};   ///< Raw arrivals, valid or not.
    std::uint64_t framesRejected{0};   ///< CRC mismatch / malformed framing.
    std::uint64_t duplicates{0};       ///< Segment already held (no new bytes).
    std::uint64_t segmentsStored{0};   ///< New segments added to chunk maps.
    std::uint64_t segmentsExtended{0}; ///< Open tail segment grew in place.
};

/// Outcome of one frame ingestion, rich enough for a streaming consumer
/// (the fleet-health monitor) to tap the ingest path without decoding the
/// frame a second time.
struct IngestResult {
    /// Acknowledgement to ship back; nullopt when the frame was rejected.
    std::optional<Ack> ack;
    /// Decoded fine but carried no new bytes (pure retransmit).
    bool duplicate{false};
    std::string phone;
    std::uint32_t seq{0};
    std::uint32_t segCount{0};
    /// Full stored content of the segment after this frame (a view into
    /// the reassembler's chunk map — valid until the next ingest call).
    std::string_view payload;
};

/// Per-phone reassembly state and completeness accounting.
class Reassembler {
public:
    /// Feeds raw bytes from a channel.  Duplicates are re-acked: the
    /// retransmit usually means the original ack was lost.
    [[nodiscard]] IngestResult ingest(std::string_view bytes);

    /// Legacy wrapper around `ingest` returning only the ack.
    std::optional<Ack> receiveFrame(std::string_view bytes);

    [[nodiscard]] std::vector<std::string> phones() const;
    [[nodiscard]] bool has(const std::string& phone) const {
        return assemblies_.contains(phone);
    }

    /// Segments held / highest advertised segment count (1.0 when nothing
    /// was ever advertised, 0.0 for a phone never heard from).
    [[nodiscard]] double coverage(const std::string& phone) const;
    [[nodiscard]] bool complete(const std::string& phone) const;
    /// Highest advertised segment count and segments held, for reporting.
    [[nodiscard]] std::size_t segmentsHeld(const std::string& phone) const;
    [[nodiscard]] std::size_t segmentsExpected(const std::string& phone) const;

    /// Best-effort Log File content: held segments concatenated in
    /// sequence order, with a newline spliced in at every gap so records
    /// torn by a lost segment cannot merge across it.
    [[nodiscard]] std::string reconstruct(const std::string& phone) const;

    [[nodiscard]] const ReassemblyStats& stats() const { return stats_; }

    /// Approximate heap footprint of the chunk maps (phone names, segment
    /// payloads, per-node estimates); deterministic for identical ingest
    /// sequences.
    [[nodiscard]] std::size_t approxMemoryBytes() const;

private:
    struct Assembly {
        std::map<std::uint32_t, std::string> segments;
        std::uint32_t segCount{0};  ///< Highest segCount advertised by any frame.
    };
    std::map<std::string, Assembly> assemblies_;
    ReassemblyStats stats_;
};

}  // namespace symfail::transport
