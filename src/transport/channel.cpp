#include "transport/channel.hpp"

#include <utility>

#include "obs/provenance.hpp"
#include "transport/frame.hpp"

namespace symfail::transport {

sim::Histogram makeDeliveryLatencyHistogram() {
    return sim::Histogram::logScale(0.05, 1'000'000.0, 6);
}

ChannelConfig ChannelConfig::gprs() {
    ChannelConfig config;
    config.name = "gprs";
    config.lossProb = 0.05;
    config.dupProb = 0.02;
    config.reorderProb = 0.10;
    config.latencyMedian = sim::Duration::millis(900);
    config.latencySigma = 0.6;
    config.reorderHoldMedian = sim::Duration::seconds(8);
    return config;
}

ChannelConfig ChannelConfig::bluetooth() {
    ChannelConfig config;
    config.name = "bluetooth";
    config.lossProb = 0.02;
    config.dupProb = 0.005;
    config.reorderProb = 0.03;
    config.latencyMedian = sim::Duration::millis(120);
    config.latencySigma = 0.4;
    config.reorderHoldMedian = sim::Duration::seconds(2);
    return config;
}

ChannelConfig ChannelConfig::memoryCard() {
    // A card swap is slow but essentially lossless and ordered.
    ChannelConfig config;
    config.name = "memory-card";
    config.lossProb = 0.0;
    config.dupProb = 0.0;
    config.reorderProb = 0.0;
    config.latencyMedian = sim::Duration::minutes(20);
    config.latencySigma = 0.8;
    return config;
}

Channel::Channel(sim::Simulator& simulator, ChannelConfig config, std::uint64_t seed)
    : simulator_{&simulator}, config_{std::move(config)}, rng_{seed} {}

bool Channel::inOutage(sim::TimePoint t) const {
    for (const auto& window : config_.outages) {
        if (window.contains(t)) return true;
    }
    return false;
}

void Channel::send(std::string bytes) {
    ++stats_.framesOffered;
    stats_.bytesOffered += bytes.size();

    if (inOutage(simulator_->now()) && rng_.bernoulli(config_.outageLossProb)) {
        ++stats_.framesLost;
        ++stats_.outageDrops;
        if (provenance_ != nullptr) {
            if (const auto header = parseFrameHeader(bytes)) {
                provenance_->frameLost(std::string{header->phone}, header->seq,
                                       /*outage=*/true, simulator_->now());
            }
        }
        if (auto* trace = simulator_->traceSink()) {
            const obs::TraceArg args[] = {{"channel", config_.name},
                                          {"bytes", bytes.size()}};
            trace->instant(traceTrack_, "transport.wire", "outage-drop",
                           simulator_->now(), args);
        }
        return;
    }
    if (rng_.bernoulli(config_.lossProb)) {
        ++stats_.framesLost;
        if (provenance_ != nullptr) {
            if (const auto header = parseFrameHeader(bytes)) {
                provenance_->frameLost(std::string{header->phone}, header->seq,
                                       /*outage=*/false, simulator_->now());
            }
        }
        if (auto* trace = simulator_->traceSink()) {
            const obs::TraceArg args[] = {{"channel", config_.name},
                                          {"bytes", bytes.size()}};
            trace->instant(traceTrack_, "transport.wire", "frame-lost",
                           simulator_->now(), args);
        }
        return;
    }

    auto drawLatency = [this]() {
        sim::Duration delay =
            rng_.lognormalDuration(config_.latencyMedian, config_.latencySigma);
        if (rng_.bernoulli(config_.reorderProb)) {
            ++stats_.framesReordered;
            delay += rng_.lognormalDuration(config_.reorderHoldMedian,
                                            config_.latencySigma);
        }
        return delay;
    };

    const bool duplicated = rng_.bernoulli(config_.dupProb);
    if (duplicated && provenance_ != nullptr) {
        if (const auto header = parseFrameHeader(bytes)) {
            provenance_->frameDuplicated(std::string{header->phone}, header->seq);
        }
    }
    deliverAfter(bytes, drawLatency());
    if (duplicated) {
        ++stats_.framesDuplicated;
        deliverAfter(bytes, drawLatency());
    }
}

void Channel::deliverAfter(const std::string& bytes, sim::Duration delay) {
    simulator_->scheduleAfter(delay, "transport.wire", [this, bytes, delay]() {
        ++stats_.framesDelivered;
        stats_.bytesDelivered += bytes.size();
        stats_.latency.add(delay.asSecondsF());
        if (provenance_ != nullptr) {
            if (const auto header = parseFrameHeader(bytes)) {
                provenance_->frameDelivered(std::string{header->phone},
                                            header->seq, header->payloadBytes,
                                            simulator_->now());
            }
        }
        if (receiver_) receiver_(bytes);
    });
}

}  // namespace symfail::transport
