#include "transport/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

namespace symfail::transport {
namespace {

void appendLine(std::string& out, const char* format, auto... args) {
    char buf[256];
    std::snprintf(buf, sizeof buf, format, args...);
    out += buf;
    out += '\n';
}

}  // namespace

double TransportReport::deliveryRatio() const {
    if (recordsInjected == 0) return 1.0;
    return static_cast<double>(recordsDelivered) /
           static_cast<double>(recordsInjected);
}

double TransportReport::goodput() const {
    if (bytesOnWire == 0) return 1.0;
    return static_cast<double>(payloadBytesDelivered) /
           static_cast<double>(bytesOnWire);
}

double TransportReport::retransmitOverhead() const {
    if (framesSent == 0) return 0.0;
    return static_cast<double>(retransmits) / static_cast<double>(framesSent);
}

std::string renderTransportReport(const TransportReport& report) {
    std::string out = "== Log transport (collection path) ==\n";
    if (!report.enabled) {
        out += "  disabled: analysis ran on the ideal in-process handoff\n";
        return out;
    }
    appendLine(out, "  records delivered        %llu / %llu (%.2f%%)%s",
               static_cast<unsigned long long>(report.recordsDelivered),
               static_cast<unsigned long long>(report.recordsInjected),
               100.0 * report.deliveryRatio(),
               report.retriesEnabled ? "" : "   [retries DISABLED]");
    appendLine(out, "  upload rounds            %llu",
               static_cast<unsigned long long>(report.uploadRounds));
    appendLine(out, "  frames sent              %llu (%llu retransmits, %.1f%% overhead)",
               static_cast<unsigned long long>(report.framesSent),
               static_cast<unsigned long long>(report.retransmits),
               100.0 * report.retransmitOverhead());
    appendLine(out, "  wire loss / dup / reord  %llu / %llu / %llu (outage drops %llu)",
               static_cast<unsigned long long>(report.framesLost),
               static_cast<unsigned long long>(report.framesDuplicated),
               static_cast<unsigned long long>(report.framesReordered),
               static_cast<unsigned long long>(report.outageDrops));
    appendLine(out, "  bytes on wire            %llu (goodput %.1f%%)",
               static_cast<unsigned long long>(report.bytesOnWire),
               100.0 * report.goodput());
    appendLine(out, "  server rejects / dups    %llu / %llu (%llu segments stored)",
               static_cast<unsigned long long>(report.framesRejected),
               static_cast<unsigned long long>(report.duplicateFrames),
               static_cast<unsigned long long>(report.segmentsStored));
    appendLine(out, "  acks received            %llu (retry budget exhausted %llux)",
               static_cast<unsigned long long>(report.acksReceived),
               static_cast<unsigned long long>(report.retryBudgetExhausted));
    if (report.deliveryLatency.total() > 0) {
        appendLine(out, "  delivery latency         p50 %.1f s   p95 %.1f s   p99 %.1f s",
                   report.deliveryLatency.quantile(0.50),
                   report.deliveryLatency.quantile(0.95),
                   report.deliveryLatency.quantile(0.99));
    }

    // Per-phone coverage loss, worst first; phones with full coverage are
    // summarized rather than listed.
    std::size_t full = 0;
    std::vector<std::pair<std::string, double>> lossy;
    for (const auto& [phone, coverage] : report.coverageByPhone) {
        if (coverage >= 1.0) {
            ++full;
        } else {
            lossy.emplace_back(phone, coverage);
        }
    }
    std::sort(lossy.begin(), lossy.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
    appendLine(out, "  coverage                 %zu/%zu phones complete", full,
               report.coverageByPhone.size());
    for (const auto& [phone, coverage] : lossy) {
        appendLine(out, "    %-12s coverage %.1f%% (records lost in transit)",
                   phone.c_str(), 100.0 * coverage);
    }
    return out;
}

}  // namespace symfail::transport
