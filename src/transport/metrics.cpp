#include "transport/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

namespace symfail::transport {
namespace {

void appendLine(std::string& out, const char* format, auto... args) {
    char buf[256];
    std::snprintf(buf, sizeof buf, format, args...);
    out += buf;
    out += '\n';
}

}  // namespace

double TransportReport::deliveryRatio() const {
    if (recordsInjected == 0) return 1.0;
    return static_cast<double>(recordsDelivered) /
           static_cast<double>(recordsInjected);
}

double TransportReport::goodput() const {
    if (bytesOnWire == 0) return 1.0;
    return static_cast<double>(payloadBytesDelivered) /
           static_cast<double>(bytesOnWire);
}

double TransportReport::retransmitOverhead() const {
    if (framesSent == 0) return 0.0;
    return static_cast<double>(retransmits) / static_cast<double>(framesSent);
}

std::string renderTransportReport(const TransportReport& report) {
    std::string out = "== Log transport (collection path) ==\n";
    if (!report.enabled) {
        out += "  disabled: analysis ran on the ideal in-process handoff\n";
        return out;
    }
    appendLine(out, "  records delivered        %llu / %llu (%.2f%%)%s",
               static_cast<unsigned long long>(report.recordsDelivered),
               static_cast<unsigned long long>(report.recordsInjected),
               100.0 * report.deliveryRatio(),
               report.retriesEnabled ? "" : "   [retries DISABLED]");
    appendLine(out, "  upload rounds            %llu",
               static_cast<unsigned long long>(report.uploadRounds));
    appendLine(out, "  frames sent              %llu (%llu retransmits, %.1f%% overhead)",
               static_cast<unsigned long long>(report.framesSent),
               static_cast<unsigned long long>(report.retransmits),
               100.0 * report.retransmitOverhead());
    appendLine(out, "  wire loss / dup / reord  %llu / %llu / %llu (outage drops %llu)",
               static_cast<unsigned long long>(report.framesLost),
               static_cast<unsigned long long>(report.framesDuplicated),
               static_cast<unsigned long long>(report.framesReordered),
               static_cast<unsigned long long>(report.outageDrops));
    appendLine(out, "  bytes on wire            %llu (goodput %.1f%%)",
               static_cast<unsigned long long>(report.bytesOnWire),
               100.0 * report.goodput());
    appendLine(out, "  wire delivered           %llu frames / %llu bytes",
               static_cast<unsigned long long>(report.framesDelivered),
               static_cast<unsigned long long>(report.bytesDelivered));
    appendLine(out, "  backoff wait             %.1f h total (stale acks %llu)",
               report.backoffWaitSeconds / 3'600.0,
               static_cast<unsigned long long>(report.staleAcks));
    appendLine(out, "  server rejects / dups    %llu / %llu (%llu segments stored)",
               static_cast<unsigned long long>(report.framesRejected),
               static_cast<unsigned long long>(report.duplicateFrames),
               static_cast<unsigned long long>(report.segmentsStored));
    appendLine(out, "  acks received            %llu (retry budget exhausted %llux)",
               static_cast<unsigned long long>(report.acksReceived),
               static_cast<unsigned long long>(report.retryBudgetExhausted));
    if (report.deliveryLatency.total() > 0) {
        appendLine(out, "  delivery latency         p50 %.1f s   p95 %.1f s   p99 %.1f s",
                   report.deliveryLatency.quantile(0.50),
                   report.deliveryLatency.quantile(0.95),
                   report.deliveryLatency.quantile(0.99));
    }

    // Per-phone coverage loss, worst first; phones with full coverage are
    // summarized rather than listed.
    std::size_t full = 0;
    std::vector<std::pair<std::string, double>> lossy;
    for (const auto& [phone, coverage] : report.coverageByPhone) {
        if (coverage >= 1.0) {
            ++full;
        } else {
            lossy.emplace_back(phone, coverage);
        }
    }
    std::sort(lossy.begin(), lossy.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
    appendLine(out, "  coverage                 %zu/%zu phones complete", full,
               report.coverageByPhone.size());
    for (const auto& [phone, coverage] : lossy) {
        appendLine(out, "    %-12s coverage %.1f%% (records lost in transit)",
                   phone.c_str(), 100.0 * coverage);
    }
    return out;
}

void publishTransportMetrics(const TransportReport& report,
                             obs::MetricsRegistry& registry) {
    registry.gauge("transport", "enabled", "1 when the campaign ran the transport path")
        .set(report.enabled ? 1.0 : 0.0);
    if (!report.enabled) return;

    registry.counter("transport", "upload_rounds", "Upload-agent rounds across the fleet")
        .inc(report.uploadRounds);
    registry.counter("transport", "frames_sent", "Data frames offered to the wire")
        .inc(report.framesSent);
    registry.counter("transport", "retransmits", "Frames sent more than once")
        .inc(report.retransmits);
    registry
        .counter("transport", "retry_budget_exhausted",
                 "Rounds that gave up until the next regular period")
        .inc(report.retryBudgetExhausted);
    registry.counter("transport", "acks_received", "Acknowledgements accepted by agents")
        .inc(report.acksReceived);
    registry.counter("transport", "stale_acks", "Acks dropped as malformed or misaddressed")
        .inc(report.staleAcks);
    registry.counter("transport", "bytes_sent", "Frame bytes offered by upload agents")
        .inc(report.bytesSent);
    registry
        .gauge("transport", "backoff_wait_seconds",
               "Simulated time agents spent in retry backoff")
        .set(report.backoffWaitSeconds);
    registry.counter("transport", "frames_lost", "Frames dropped on the wire")
        .inc(report.framesLost);
    registry.counter("transport", "frames_duplicated", "Frames delivered twice")
        .inc(report.framesDuplicated);
    registry.counter("transport", "frames_reordered", "Frames held back past a successor")
        .inc(report.framesReordered);
    registry.counter("transport", "outage_drops", "Frames swallowed by outage windows")
        .inc(report.outageDrops);
    registry.counter("transport", "bytes_on_wire", "Total wire bytes, framing included")
        .inc(report.bytesOnWire);
    registry.counter("transport", "frames_delivered", "Frames the channels handed to receivers")
        .inc(report.framesDelivered);
    registry.counter("transport", "bytes_delivered", "Wire bytes handed to receivers")
        .inc(report.bytesDelivered);
    registry.counter("transport", "frames_rejected", "Frames the server failed to decode")
        .inc(report.framesRejected);
    registry.counter("transport", "duplicate_frames", "Duplicates detected server-side")
        .inc(report.duplicateFrames);
    registry.counter("transport", "segments_stored", "Distinct segments reassembled")
        .inc(report.segmentsStored);
    registry.counter("transport", "records_injected", "Records in the phones' Log Files")
        .inc(report.recordsInjected);
    registry
        .counter("transport", "records_delivered",
                 "Records parseable from reassembled logs")
        .inc(report.recordsDelivered);
    registry.gauge("transport", "delivery_ratio", "Delivered / injected records")
        .set(report.deliveryRatio());
    registry.gauge("transport", "goodput", "Payload bytes per wire byte")
        .set(report.goodput());

    const sim::Histogram& latency = report.deliveryLatency;
    std::vector<double> bounds;
    bounds.reserve(latency.binCount());
    for (std::size_t i = 0; i < latency.binCount(); ++i) {
        bounds.push_back(latency.binHi(i));
    }
    auto& histogram = registry.histogram("transport", "delivery_latency_seconds",
                                         std::move(bounds),
                                         "One-way frame delivery latency");
    for (std::size_t i = 0; i < latency.binCount(); ++i) {
        if (latency.binValue(i) > 0) {
            histogram.observe((latency.binLo(i) + latency.binHi(i)) / 2.0,
                              latency.binValue(i));
        }
    }
    if (latency.underflow() > 0) {
        histogram.observe(latency.binLo(0), latency.underflow());
    }
    if (latency.overflow() > 0) {
        histogram.observe(latency.binHi(latency.binCount() - 1) + 1.0,
                          latency.overflow());
    }

    for (const auto& [phone, coverage] : report.coverageByPhone) {
        registry
            .gauge("transport", "coverage", "phone", phone,
                   "Per-phone segment coverage, [0,1]")
            .set(coverage);
    }
}

}  // namespace symfail::transport
