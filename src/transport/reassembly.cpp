#include "transport/reassembly.hpp"

#include <algorithm>

namespace symfail::transport {

IngestResult Reassembler::ingest(std::string_view bytes) {
    ++stats_.framesReceived;
    IngestResult result;
    auto frame = decodeFrame(bytes);
    if (!frame) {
        ++stats_.framesRejected;
        return result;
    }
    result.phone = frame->phone;
    result.seq = frame->seq;
    result.segCount = frame->segCount;

    Assembly& assembly = assemblies_[frame->phone];
    assembly.segCount = std::max(assembly.segCount, frame->segCount);

    auto [it, inserted] = assembly.segments.try_emplace(frame->seq);
    if (inserted) {
        it->second = std::move(frame->payload);
        ++stats_.segmentsStored;
    } else if (frame->payload.size() > it->second.size()) {
        // The open tail segment grew since we last saw it; the longer copy
        // strictly extends the shorter one (append-only chunking).
        it->second = std::move(frame->payload);
        ++stats_.segmentsExtended;
    } else {
        ++stats_.duplicates;
        result.duplicate = true;
    }
    result.payload = it->second;
    result.ack = Ack{std::move(frame->phone), frame->seq,
                     static_cast<std::uint32_t>(it->second.size())};
    return result;
}

std::optional<Ack> Reassembler::receiveFrame(std::string_view bytes) {
    return ingest(bytes).ack;
}

std::vector<std::string> Reassembler::phones() const {
    std::vector<std::string> names;
    names.reserve(assemblies_.size());
    for (const auto& [name, assembly] : assemblies_) names.push_back(name);
    return names;
}

std::size_t Reassembler::segmentsHeld(const std::string& phone) const {
    const auto it = assemblies_.find(phone);
    return it == assemblies_.end() ? 0 : it->second.segments.size();
}

std::size_t Reassembler::segmentsExpected(const std::string& phone) const {
    const auto it = assemblies_.find(phone);
    if (it == assemblies_.end()) return 0;
    // A frame's seq can exceed its snapshot's segCount only under
    // corruption that still passed CRC (practically impossible), but keep
    // the accounting monotone anyway.
    std::uint32_t highestSeq = 0;
    if (!it->second.segments.empty()) {
        highestSeq = it->second.segments.rbegin()->first + 1;
    }
    return std::max<std::size_t>(it->second.segCount, highestSeq);
}

double Reassembler::coverage(const std::string& phone) const {
    const auto it = assemblies_.find(phone);
    if (it == assemblies_.end()) return 0.0;
    const std::size_t expected = segmentsExpected(phone);
    if (expected == 0) return 1.0;
    return static_cast<double>(it->second.segments.size()) /
           static_cast<double>(expected);
}

bool Reassembler::complete(const std::string& phone) const {
    const auto it = assemblies_.find(phone);
    if (it == assemblies_.end()) return false;
    return it->second.segments.size() == segmentsExpected(phone);
}

std::string Reassembler::reconstruct(const std::string& phone) const {
    const auto it = assemblies_.find(phone);
    if (it == assemblies_.end()) return {};
    std::string content;
    std::uint32_t expectedSeq = 0;
    for (const auto& [seq, payload] : it->second.segments) {
        if (seq != expectedSeq && !content.empty() && content.back() != '\n') {
            // Gap: make sure the record torn at the end of the previous
            // held segment cannot fuse with the first line after the gap.
            content += '\n';
        }
        content += payload;
        expectedSeq = seq + 1;
    }
    return content;
}

std::size_t Reassembler::approxMemoryBytes() const {
    constexpr std::size_t mapNode = 3 * sizeof(void*);
    std::size_t total = sizeof *this;
    for (const auto& [phone, assembly] : assemblies_) {
        total += phone.size() + sizeof(std::string) + sizeof(Assembly) + mapNode;
        for (const auto& [seq, segment] : assembly.segments) {
            total += sizeof(seq) + segment.size() + sizeof(std::string) + mapNode;
        }
    }
    return total;
}

}  // namespace symfail::transport
