// Chunk framing for the log-transport path.
//
// A phone's Log File leaves the device in CRC-framed, sequence-numbered
// segments so the collection server can detect corruption, suppress
// duplicates and merge out-of-order arrivals.  Framing is line-aligned:
// a segment always carries whole log records, and the greedy packer
// never moves a record between segments once a segment is full — so an
// append-only Log File produces a stable segment prefix and only the
// final, still-open segment grows between upload rounds.
//
// Wire format (one frame per transmission):
//   SEGv1|<phone>|<seq>|<segCount>|<payloadBytes>|<crc32 hex>\n<payload>
// and for the acknowledgement path:
//   ACKv1|<phone>|<seq>|<payloadBytes>|<crc32 hex>
// The CRC covers the header fields and the payload, so a corrupted
// sequence number is rejected rather than filed under the wrong segment.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace symfail::transport {

/// CRC-32 (IEEE 802.3 polynomial, reflected) over arbitrary bytes.
[[nodiscard]] std::uint32_t crc32(std::string_view data);

/// One Log File segment in flight.
struct Frame {
    std::string phone;
    std::uint32_t seq{0};       ///< Segment index within the Log File.
    std::uint32_t segCount{0};  ///< Total segments in the snapshot this frame left.
    std::string payload;        ///< Whole log lines, each '\n'-terminated.
};

/// Server-to-phone acknowledgement of one received segment.
struct Ack {
    std::string phone;
    std::uint32_t seq{0};
    std::uint32_t payloadBytes{0};  ///< Length acked (the open tail segment grows).
};

[[nodiscard]] std::string encodeFrame(const Frame& frame);
/// Decodes and CRC-checks a frame; nullopt on any damage (truncation,
/// corrupted fields, CRC mismatch).
[[nodiscard]] std::optional<Frame> decodeFrame(std::string_view bytes);

[[nodiscard]] std::string encodeAck(const Ack& ack);
[[nodiscard]] std::optional<Ack> decodeAck(std::string_view bytes);

/// Identity fields of a data frame, readable without a CRC pass.
struct FrameHeader {
    std::string_view phone;  ///< Views into the frame bytes.
    std::uint32_t seq{0};
    std::uint64_t payloadBytes{0};
};

/// Cheap header peek for provenance tracking on the wire: no CRC check, no
/// payload copy.  nullopt for anything that is not a well-formed SEGv1
/// header (acks included).
[[nodiscard]] std::optional<FrameHeader> parseFrameHeader(std::string_view bytes);

/// Splits Log File content into line-aligned segments of at most
/// `payloadBytes` each (a single oversized line gets its own segment).
/// Greedy from the start: for append-only content, every segment except
/// the last is stable across calls.
[[nodiscard]] std::vector<Frame> chunkLogContent(const std::string& phone,
                                                 std::string_view content,
                                                 std::size_t payloadBytes);

}  // namespace symfail::transport
