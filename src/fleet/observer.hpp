// Campaign observation hooks.
//
// A CampaignObserver extends the collection server's ingest tap with the
// campaign lifecycle: it learns when the simulation starts (so it can
// schedule its own periodic work on the same simulated clock), when each
// phone enrolls (with a probe into the phone's upload-channel outage
// schedule, so server-side silence can be attributed to transport rather
// than the device), and when the campaign ends.
//
// The contract that keeps campaigns reproducible: an observer is strictly
// read-only with respect to the simulated world.  It may schedule events
// for its own bookkeeping, but it must never mutate device, transport or
// server state and must never draw from any campaign RNG stream — with an
// observer attached, the collected logs and every regenerated table stay
// bit-identical to an unobserved run.
#pragma once

#include <functional>
#include <string>

#include "fleet/collection.hpp"
#include "simkernel/simulator.hpp"
#include "simkernel/time.hpp"

namespace symfail::obs {
class ProvenanceTracker;
}  // namespace symfail::obs

namespace symfail::fleet {

struct FleetConfig;

/// Probe into a phone's upload-path outage schedule: true when the data
/// channel is inside a scheduled outage window at `t`.  Valid only while
/// the campaign's simulation objects are alive (between onCampaignBegin
/// and the return of runCampaign).
using OutageProbe = std::function<bool(sim::TimePoint)>;

/// Lifecycle + ingest hooks for one campaign.  All default to no-ops so
/// implementations opt into what they need.
class CampaignObserver : public IngestObserver {
public:
    /// The simulator exists and the fleet is configured, but no event has
    /// fired yet.  `simulator` outlives the campaign run.
    virtual void onCampaignBegin(sim::Simulator& /*simulator*/,
                                 const FleetConfig& /*config*/) {}
    /// A phone was added to the fleet; it powers on at `enrollAt`.  The
    /// probe is empty when the campaign runs without transport.
    virtual void onPhoneEnrolled(const std::string& /*phoneName*/,
                                 sim::TimePoint /*enrollAt*/,
                                 OutageProbe /*outageProbe*/) {}
    /// The simulation clock reached campaign end; simulation objects are
    /// still alive.
    virtual void onCampaignEnd(sim::TimePoint /*at*/) {}
    /// A provenance tracker rides this campaign.  Observers that consume
    /// the ingest stream should report their consumption watermark to it
    /// (ProvenanceTracker::monitorConsumed) so records earn their
    /// "alerted" stamp.  Called before onCampaignBegin; the tracker
    /// outlives the campaign run.
    virtual void onProvenanceAttached(obs::ProvenanceTracker* /*tracker*/) {}
    /// Approximate bytes of observer-held state (window buffers, snapshot
    /// history).  Read by the resource accountant's sampling sweep; must
    /// be derived from simulated state only (deterministic).  The default
    /// reports nothing.
    [[nodiscard]] virtual std::uint64_t approxMemoryBytes() const { return 0; }

    void onWholeFile(const std::string& /*phoneName*/, std::string_view /*content*/,
                     bool /*stored*/) override {}
    void onFrameAccepted(const transport::IngestResult& /*frame*/) override {}
};

}  // namespace symfail::fleet
