// Log collection server.
//
// The paper's companion tool paper describes an automated infrastructure
// that transfers Log Files off the phones.  This server is its model, with
// two ingestion paths:
//
//   * whole-file uploads (`receive`) — the legacy in-process handoff: the
//     logger's upload sink pushes each phone's current Log File content.
//     The server keeps the copy with the most parseable records, so a
//     truncated late upload can never erase data that already arrived
//     (such replacements are counted as anomalies instead);
//   * chunked uploads (`receiveFrame`) — CRC-framed segments arriving over
//     the unreliable transport channels, reconciled by a
//     transport::Reassembler (duplicate suppression, out-of-order merge,
//     gap-safe reconstruction).
//
// `collectedLogs` reconciles both paths per phone — whichever copy carries
// more records wins — so analysis can run on uploaded data even for phones
// that died before campaign end, and on partial data for phones whose
// segments were permanently lost.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/dataset.hpp"
#include "transport/frame.hpp"
#include "transport/reassembly.hpp"

namespace symfail::fleet {

/// Streaming tap on the server's ingest path.  Implementations (the
/// fleet-health monitor) observe every accepted upload as it arrives, in
/// simulated time, without perturbing storage or acking.
class IngestObserver {
public:
    virtual ~IngestObserver() = default;
    /// A whole-file upload arrived.  `stored` is false when the server
    /// refused it as a truncated late upload.
    virtual void onWholeFile(const std::string& phoneName, std::string_view content,
                             bool stored) = 0;
    /// A chunked frame decoded cleanly and was filed (duplicates included;
    /// see transport::IngestResult::duplicate).
    virtual void onFrameAccepted(const transport::IngestResult& frame) = 0;
};

/// Reconciling collection store.
class CollectionServer {
public:
    /// Receives a whole-file upload.  Keeps the copy with the most
    /// parseable records: a shorter/truncated late upload is ignored (and
    /// counted) rather than allowed to replace better data.
    void receive(const std::string& phoneName, const std::string& logFileContent);

    /// Receives one chunked-transport frame; returns the ack to ship back
    /// to the phone (nullopt when the frame was rejected as damaged).
    std::optional<transport::Ack> receiveFrame(std::string_view bytes);

    /// Like `receiveFrame` but returns the full reassembly outcome (the
    /// provenance wiring needs the stored extent and the duplicate flag;
    /// the ack to ship back is `result.ack`).
    transport::IngestResult ingestFrame(std::string_view bytes);

    /// Phones known through either ingestion path.
    [[nodiscard]] std::size_t phoneCount() const;
    [[nodiscard]] std::uint64_t uploadsReceived() const { return uploads_; }
    /// Whole-file uploads ignored because they carried fewer records than
    /// the copy already held (the truncated-late-upload anomaly).
    [[nodiscard]] std::uint64_t truncatedUploadsIgnored() const {
        return truncatedUploadsIgnored_;
    }
    [[nodiscard]] bool has(const std::string& phoneName) const;

    /// Segment coverage for the copy `collectedLogs` would pick for this
    /// phone: 1.0 for whole-file copies, the reassembler's segment
    /// coverage otherwise, 0.0 for a phone never heard from.
    [[nodiscard]] double coverage(const std::string& phoneName) const;

    /// Snapshot usable by the analysis pipeline (per-phone best copy, with
    /// coverage attached for the dataset's coverage-loss accounting).
    [[nodiscard]] std::vector<analysis::PhoneLog> collectedLogs() const;

    [[nodiscard]] const transport::Reassembler& reassembler() const {
        return reassembler_;
    }

    /// Attaches a streaming ingest tap (non-owning; nullptr detaches).
    /// Purely observational: attaching one never changes what the server
    /// stores or acks.
    void setIngestObserver(IngestObserver* observer) { observer_ = observer; }

    /// Approximate heap footprint of the server: stored whole-file copies
    /// plus the reassembler's chunk maps; deterministic for identical
    /// upload sequences.
    [[nodiscard]] std::size_t approxMemoryBytes() const;

private:
    struct StoredLog {
        std::string content;
        std::size_t records{0};
    };
    /// Best copy for one phone across both paths; nullopt when unknown.
    struct BestCopy {
        std::string content;
        double coverage{1.0};
    };
    [[nodiscard]] std::optional<BestCopy> bestCopy(const std::string& phoneName) const;

    std::map<std::string, StoredLog> latest_;
    transport::Reassembler reassembler_;
    IngestObserver* observer_{nullptr};
    std::uint64_t uploads_{0};
    std::uint64_t truncatedUploadsIgnored_{0};
};

}  // namespace symfail::fleet
