// Log collection server.
//
// The paper's companion tool paper describes an automated infrastructure
// that transfers Log Files off the phones.  This server is its model: the
// logger's upload agent pushes each phone's current Log File content, and
// the server keeps the latest copy per phone — so analysis can run on
// uploaded data even for phones that died before campaign end.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/dataset.hpp"

namespace symfail::fleet {

/// Latest-copy-per-phone collection store.
class CollectionServer {
public:
    /// Receives an upload (idempotent: replaces the previous copy).
    void receive(const std::string& phoneName, const std::string& logFileContent);

    [[nodiscard]] std::size_t phoneCount() const { return latest_.size(); }
    [[nodiscard]] std::uint64_t uploadsReceived() const { return uploads_; }
    [[nodiscard]] bool has(const std::string& phoneName) const {
        return latest_.contains(phoneName);
    }

    /// Snapshot usable by the analysis pipeline.
    [[nodiscard]] std::vector<analysis::PhoneLog> collectedLogs() const;

private:
    std::map<std::string, std::string> latest_;
    std::uint64_t uploads_{0};
};

}  // namespace symfail::fleet
