#include "fleet/collection.hpp"

#include <set>

#include "logger/records.hpp"

namespace symfail::fleet {
namespace {

std::size_t recordCount(std::string_view content) {
    return logger::parseLogFile(content).size();
}

}  // namespace

void CollectionServer::receive(const std::string& phoneName,
                               const std::string& logFileContent) {
    ++uploads_;
    const std::size_t records = recordCount(logFileContent);
    const auto it = latest_.find(phoneName);
    if (it != latest_.end() && records < it->second.records) {
        // A truncated late upload: keeping it would lose data that already
        // made it to the server.
        ++truncatedUploadsIgnored_;
        if (observer_ != nullptr) {
            observer_->onWholeFile(phoneName, logFileContent, false);
        }
        return;
    }
    latest_[phoneName] = StoredLog{logFileContent, records};
    if (observer_ != nullptr) {
        observer_->onWholeFile(phoneName, logFileContent, true);
    }
}

std::optional<transport::Ack> CollectionServer::receiveFrame(std::string_view bytes) {
    return ingestFrame(bytes).ack;
}

transport::IngestResult CollectionServer::ingestFrame(std::string_view bytes) {
    auto result = reassembler_.ingest(bytes);
    if (result.ack && observer_ != nullptr) {
        observer_->onFrameAccepted(result);
    }
    return result;
}

std::size_t CollectionServer::phoneCount() const {
    std::set<std::string> phones;
    for (const auto& [name, log] : latest_) phones.insert(name);
    for (const auto& name : reassembler_.phones()) phones.insert(name);
    return phones.size();
}

bool CollectionServer::has(const std::string& phoneName) const {
    return latest_.contains(phoneName) || reassembler_.has(phoneName);
}

std::optional<CollectionServer::BestCopy> CollectionServer::bestCopy(
    const std::string& phoneName) const {
    const auto it = latest_.find(phoneName);
    const bool haveWhole = it != latest_.end();
    const bool haveChunks = reassembler_.has(phoneName);
    if (!haveWhole && !haveChunks) return std::nullopt;
    if (!haveChunks) return BestCopy{it->second.content, 1.0};

    std::string reassembled = reassembler_.reconstruct(phoneName);
    const double chunkCoverage = reassembler_.coverage(phoneName);
    if (!haveWhole) return BestCopy{std::move(reassembled), chunkCoverage};

    // Both paths delivered: whichever copy carries more records wins; a
    // tie goes to the whole-file copy (it cannot have internal gaps).
    if (recordCount(reassembled) > it->second.records) {
        return BestCopy{std::move(reassembled), chunkCoverage};
    }
    return BestCopy{it->second.content, 1.0};
}

double CollectionServer::coverage(const std::string& phoneName) const {
    const auto best = bestCopy(phoneName);
    return best ? best->coverage : 0.0;
}

std::vector<analysis::PhoneLog> CollectionServer::collectedLogs() const {
    std::set<std::string> phones;
    for (const auto& [name, log] : latest_) phones.insert(name);
    for (const auto& name : reassembler_.phones()) phones.insert(name);

    std::vector<analysis::PhoneLog> logs;
    logs.reserve(phones.size());
    for (const auto& name : phones) {
        auto best = bestCopy(name);
        if (!best) continue;
        logs.push_back(
            analysis::PhoneLog{name, std::move(best->content), best->coverage});
    }
    return logs;
}

std::size_t CollectionServer::approxMemoryBytes() const {
    constexpr std::size_t mapNode = 3 * sizeof(void*);
    std::size_t total = sizeof *this;
    for (const auto& [phone, log] : latest_) {
        total += phone.size() + log.content.size() + sizeof(std::string) +
                 sizeof(StoredLog) + mapNode;
    }
    total += reassembler_.approxMemoryBytes();
    return total;
}

}  // namespace symfail::fleet
