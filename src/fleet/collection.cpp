#include "fleet/collection.hpp"

namespace symfail::fleet {

void CollectionServer::receive(const std::string& phoneName,
                               const std::string& logFileContent) {
    latest_[phoneName] = logFileContent;
    ++uploads_;
}

std::vector<analysis::PhoneLog> CollectionServer::collectedLogs() const {
    std::vector<analysis::PhoneLog> logs;
    logs.reserve(latest_.size());
    for (const auto& [name, content] : latest_) {
        logs.push_back(analysis::PhoneLog{name, content});
    }
    return logs;
}

}  // namespace symfail::fleet
