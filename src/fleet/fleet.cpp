#include "fleet/fleet.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>

#include "faults/injector.hpp"
#include "fleet/collection.hpp"
#include "fleet/observer.hpp"
#include "logger/records.hpp"
#include "simkernel/simulator.hpp"
#include "transport/frame.hpp"

namespace symfail::fleet {
namespace {

/// Adapts one phone's flash mutations onto the provenance tracker: only
/// the consolidated Log File feeds lineage, and every event is stamped
/// with the simulated clock the flash write happened under.
class ProvenanceFlashAdapter final : public phone::FlashWriteObserver {
public:
    ProvenanceFlashAdapter(obs::ProvenanceTracker& tracker,
                           sim::Simulator& simulator, std::string phone)
        : tracker_{&tracker}, simulator_{&simulator}, phone_{std::move(phone)} {}

    void onAppend(std::string_view file, std::uint64_t offset,
                  std::uint32_t length, std::string_view line) override {
        if (file != logger::kLogFile) return;
        tracker_->recordCreated(phone_, offset, length, logger::recordTag(line),
                                simulator_->now());
    }
    void onTear(std::string_view file, std::uint64_t newSize) override {
        if (file != logger::kLogFile) return;
        tracker_->tailTorn(phone_, newSize, simulator_->now());
    }
    void onRotate(std::string_view file, std::uint64_t cutBytes) override {
        if (file != logger::kLogFile) return;
        tracker_->prefixRotated(phone_, cutBytes, simulator_->now());
    }

private:
    obs::ProvenanceTracker* tracker_;
    sim::Simulator* simulator_;
    std::string phone_;
};

}  // namespace

analysis::TruthMap FleetResult::truthMap() const {
    analysis::TruthMap map;
    for (std::size_t i = 0; i < phoneNames.size(); ++i) {
        map.emplace(phoneNames[i], &truths[i]);
    }
    return map;
}

double expectedObservedHours(const FleetConfig& config) {
    // Phone i joins at (i + 0.5)/n * enrollmentWindow and is observed to
    // campaign end.
    double total = 0.0;
    for (int i = 0; i < config.phoneCount; ++i) {
        const double join = (static_cast<double>(i) + 0.5) /
                            static_cast<double>(config.phoneCount) *
                            config.enrollmentWindow.asHoursF();
        total += config.campaign.asHoursF() - join;
    }
    return total;
}

faults::StudyPlan derivePlan(const FleetConfig& config) {
    const double wallHours = expectedObservedHours(config);
    const double onHours = wallHours * config.assumedOnFraction;
    faults::StudyPlan plan;
    // Typical profile: ~6 calls and ~8 messages per powered-on day.
    plan.expectedCalls = onHours / 24.0 * 6.0;
    plan.expectedMessages = onHours / 24.0 * 8.0;
    plan.expectedOnHours = onHours;
    plan.targetPanics = config.panicsPerHour * wallHours;
    plan.targetFreezes = config.freezesPerHour * wallHours;
    plan.targetSelfShutdowns = config.selfShutdownsPerHour * wallHours;
    plan.targetOutputFailures = config.outputFailuresPerHour * wallHours;
    return plan;
}

FleetResult runCampaign(const FleetConfig& config) {
    sim::Simulator simulator;
    simulator.setTraceSink(config.obs.trace);
    simulator.setProfiler(config.obs.profiler);
    const std::uint32_t fleetTrack =
        config.obs.trace != nullptr ? config.obs.trace->registerTrack("fleet") : 0;
    sim::Rng fleetRng{config.seed};
    // Transport draws come from an independent stream so enabling the
    // collection path never shifts the per-phone seeds — the simulated
    // campaign (and every regenerated table) stays bit-identical.
    sim::Rng transportRng{config.seed ^ 0x7452414E53504F52ULL};
    // Fault planes likewise: their own substream, consumed only when
    // planes attach, so disabled planes leave every other draw untouched.
    sim::Rng osfaultRng{config.seed ^ 0x4F534641554C5421ULL};

    const auto rates = faults::deriveRates(derivePlan(config));

    // Declared before the phones: planes keep raw pointers into devices,
    // loggers and channels and must outlive them (see registry.hpp).
    std::unique_ptr<osfault::PlaneRegistry> planeRegistry;
    if (config.osfault.shouldAttach()) {
        planeRegistry = std::make_unique<osfault::PlaneRegistry>(config.osfault);
    }

    struct PhoneUnit {
        // Destruction order matters: the device's destructor may run
        // power-down hooks that call back into the logger, injector and
        // upload agent, so the device (declared last) must be destroyed
        // first.
        std::unique_ptr<logger::FailureLogger> logger;
        std::unique_ptr<logger::UserReportChannel> userReports;
        std::unique_ptr<faults::FaultInjector> injector;
        std::unique_ptr<transport::Channel> dataChannel;
        std::unique_ptr<transport::Channel> ackChannel;
        std::unique_ptr<transport::UploadAgent> uploadAgent;
        std::unique_ptr<ProvenanceFlashAdapter> flashAdapter;
        std::unique_ptr<phone::PhoneDevice> device;
    };
    std::vector<PhoneUnit> units;
    units.reserve(static_cast<std::size_t>(config.phoneCount));

    CollectionServer server;

    // The monitor taps the ingest stream and learns the campaign shape
    // before any event fires, so its own periodic work rides the same
    // simulated clock as everything else.
    CampaignObserver* monitor = config.obs.monitor;
    obs::ProvenanceTracker* provenance = config.obs.provenance;
    if (provenance != nullptr) provenance->attachTrace(config.obs.trace);
    if (monitor != nullptr) {
        server.setIngestObserver(monitor);
        if (provenance != nullptr) monitor->onProvenanceAttached(provenance);
        monitor->onCampaignBegin(simulator, config);
    }

    FleetResult result;
    result.derivedRates = rates;

    for (int i = 0; i < config.phoneCount; ++i) {
        phone::PhoneDevice::Config deviceConfig;
        deviceConfig.name = "phone-" + std::to_string(i);
        deviceConfig.symbianVersion =
            config.versionPool[static_cast<std::size_t>(i) % config.versionPool.size()];
        deviceConfig.seed = fleetRng.nextU64();

        // Per-user variation around the typical profile.
        phone::UserProfile& profile = deviceConfig.profile;
        profile.callsPerDay = fleetRng.lognormalMedian(6.0, 0.4);
        profile.smsPerDay = fleetRng.lognormalMedian(8.0, 0.5);
        profile.appSessionsPerDay = fleetRng.lognormalMedian(10.0, 0.4);
        profile.nightOffProb = fleetRng.uniform(0.10, 0.45);
        profile.cameraPerDay = fleetRng.lognormalMedian(0.5, 0.6);
        profile.bluetoothPerDay = fleetRng.lognormalMedian(0.3, 0.6);
        profile.webPerDay = fleetRng.lognormalMedian(1.0, 0.6);
        profile.freezeNoticeMedian =
            sim::Duration::fromSecondsF(fleetRng.lognormalMedian(12.0 * 60.0, 0.4));

        auto device = std::make_unique<phone::PhoneDevice>(simulator, deviceConfig);
        auto loggerApp =
            std::make_unique<logger::FailureLogger>(*device, config.loggerConfig);
        auto userReports = std::make_unique<logger::UserReportChannel>(
            *device, config.userReportConfig, fleetRng.nextU64());
        auto injector = std::make_unique<faults::FaultInjector>(*device, rates,
                                                                fleetRng.nextU64());

        // The collection path: one lossy channel pair and one upload agent
        // per phone, all seeded off the independent transport stream.
        std::unique_ptr<transport::Channel> dataChannel;
        std::unique_ptr<transport::Channel> ackChannel;
        std::unique_ptr<transport::UploadAgent> uploadAgent;
        if (config.transport.enabled) {
            dataChannel = std::make_unique<transport::Channel>(
                simulator, config.transport.dataChannel, transportRng.nextU64());
            ackChannel = std::make_unique<transport::Channel>(
                simulator, config.transport.ackChannel, transportRng.nextU64());
            uploadAgent = std::make_unique<transport::UploadAgent>(
                *device, *loggerApp, *dataChannel, *ackChannel,
                config.transport.policy, transportRng.nextU64());
            dataChannel->setTraceTrack(device->traceTrack());
            ackChannel->setTraceTrack(device->traceTrack());
            transport::Channel* ackPtr = ackChannel.get();
            if (provenance != nullptr) {
                // Server-edge reconciliation: stamp what the reassembler
                // stored (or count the rejected/duplicate copy) before the
                // ack ships back.
                uploadAgent->setProvenance(provenance);
                dataChannel->setProvenance(provenance);
                sim::Simulator* simPtr = &simulator;
                dataChannel->setReceiver([&server, ackPtr, provenance,
                                          simPtr](const std::string& bytes) {
                    const auto ingest = server.ingestFrame(bytes);
                    if (ingest.ack) {
                        provenance->segmentReconciled(
                            ingest.phone, ingest.seq, ingest.payload.size(),
                            ingest.duplicate, simPtr->now());
                        ackPtr->send(transport::encodeAck(*ingest.ack));
                    } else {
                        provenance->frameRejected(simPtr->now());
                    }
                });
            } else {
                dataChannel->setReceiver(
                    [&server, ackPtr](const std::string& bytes) {
                        if (const auto ack = server.receiveFrame(bytes)) {
                            ackPtr->send(transport::encodeAck(*ack));
                        }
                    });
            }
        }

        // Lineage starts at the flash write: the adapter stamps every Log
        // File append (and tear/rotation) the instant it happens.
        std::unique_ptr<ProvenanceFlashAdapter> flashAdapter;
        if (provenance != nullptr) {
            flashAdapter = std::make_unique<ProvenanceFlashAdapter>(
                *provenance, simulator, deviceConfig.name);
            device->flash().setWriteObserver(flashAdapter.get());
        }

        // OS-interface fault planes: wired after the transport path so the
        // radio plane can feed the channels' outage model, before
        // enrollment so every plane sees the full campaign window.
        if (planeRegistry != nullptr) {
            planeRegistry->attach(simulator, *device, *loggerApp,
                                  dataChannel.get(), ackChannel.get(),
                                  osfaultRng.nextU64());
        }

        // Staggered enrollment: the phone powers on when its user joins
        // the study.
        const double joinHours = (static_cast<double>(i) + 0.5) /
                                 static_cast<double>(config.phoneCount) *
                                 config.enrollmentWindow.asHoursF();
        const sim::TimePoint enrollAt =
            sim::TimePoint::origin() + sim::Duration::fromSecondsF(joinHours * 3'600.0);
        if (monitor != nullptr) {
            OutageProbe probe;
            if (const transport::Channel* data = dataChannel.get()) {
                probe = [data](sim::TimePoint t) { return data->inOutage(t); };
            }
            monitor->onPhoneEnrolled(deviceConfig.name, enrollAt, std::move(probe));
        }
        phone::PhoneDevice* devicePtr = device.get();
        simulator.scheduleAt(
            enrollAt,
            "fleet.enroll", [devicePtr, &simulator, fleetTrack]() {
                if (auto* trace = simulator.traceSink()) {
                    const obs::TraceArg args[] = {{"phone", devicePtr->name()}};
                    trace->instant(fleetTrack, "fleet", "enroll", simulator.now(),
                                   args);
                }
                devicePtr->powerOn();
            });

        units.push_back(PhoneUnit{std::move(loggerApp), std::move(userReports),
                                  std::move(injector), std::move(dataChannel),
                                  std::move(ackChannel), std::move(uploadAgent),
                                  std::move(flashAdapter), std::move(device)});
    }

    // Capacity accounting: a read-only sweep over every subsystem's byte
    // probe.  The sweep touches no RNG stream and mutates nothing, so —
    // like the monitor — attaching it leaves every campaign table
    // bit-identical (the extra events only shift queue sequence numbers,
    // which order only the sweep itself).
    obs::ResourceAccountant* accountant = config.obs.accountant;
    std::function<void()> takeAccountingSample;
    if (accountant != nullptr) {
        takeAccountingSample = [&simulator, &units, &server, accountant,
                                monitor]() {
            std::uint64_t phoneBytes = 0;
            std::uint64_t loggerBytes = 0;
            std::uint64_t transportBytes = 0;
            for (const auto& unit : units) {
                phoneBytes += unit.device->approxMemoryBytes();
                loggerBytes += unit.logger->approxMemoryBytes();
                if (unit.dataChannel != nullptr) {
                    transportBytes += unit.dataChannel->approxMemoryBytes();
                }
                if (unit.ackChannel != nullptr) {
                    transportBytes += unit.ackChannel->approxMemoryBytes();
                }
                if (unit.uploadAgent != nullptr) {
                    transportBytes += unit.uploadAgent->approxMemoryBytes();
                }
            }
            accountant->record("simkernel", simulator.queueApproxBytes());
            accountant->record("phone", phoneBytes);
            accountant->record("logger", loggerBytes);
            accountant->record("transport", transportBytes);
            accountant->record("server", server.approxMemoryBytes());
            if (monitor != nullptr) {
                accountant->record("monitor", monitor->approxMemoryBytes());
            }
        };
        simulator.schedulePeriodic(
            config.obs.accountingInterval, "obs.account",
            [takeAccountingSample](sim::Periodic&) { takeAccountingSample(); });
    }

    simulator.runUntil(sim::TimePoint::origin() + config.campaign);
    if (accountant != nullptr) takeAccountingSample();
    if (monitor != nullptr) {
        monitor->onCampaignEnd(sim::TimePoint::origin() + config.campaign);
        server.setIngestObserver(nullptr);
    }
    if (provenance != nullptr) {
        // Resolve outcomes at the campaign boundary, before teardown-order
        // stragglers (destructor-time flash writes) could muddy the books.
        provenance->finalize(sim::TimePoint::origin() + config.campaign);
    }

    std::uint64_t heartbeatsWritten = 0;
    std::uint64_t panicsLogged = 0;
    std::uint64_t bootsLogged = 0;
    std::uint64_t snapshotsWritten = 0;
    for (auto& unit : units) {
        // End of campaign: collect the Log File and the ground truth, then
        // drop the simulation objects.
        result.logs.push_back(analysis::PhoneLog{unit.device->name(),
                                                 unit.logger->logFileContent()});
        result.phoneNames.push_back(unit.device->name());
        result.truths.push_back(unit.device->groundTruth());
        const auto& stats = unit.injector->stats();
        result.panicsInjected += stats.primaryPanics + stats.secondaryPanics;
        result.hangsInjected += stats.hangs;
        result.spontaneousRebootsInjected += stats.spontaneousReboots;
        result.outputFailuresInjected += stats.outputFailures;
        result.userReportsFiled += unit.userReports->reportsFiled();
        result.totalBoots += unit.device->bootCount();
        heartbeatsWritten += unit.logger->heartbeatsWritten();
        panicsLogged += unit.logger->panicsLogged();
        bootsLogged += unit.logger->bootsLogged();
        snapshotsWritten += unit.logger->snapshotsWritten();
        result.loggerRecordAnomalies += unit.logger->recordAnomalies();
        result.loggerDaemonDeaths += unit.logger->daemonDeaths();
    }
    result.simulatorEvents = simulator.eventsFired();
    result.queueDepthPeak = simulator.queueDepthPeak();
    if (planeRegistry != nullptr) result.osfault = planeRegistry->stats();

    // Transport accounting: what made it to the collection server, and
    // what the wire cost to get it there.
    transport::TransportReport& report = result.transport;
    report.enabled = config.transport.enabled;
    report.retriesEnabled = config.transport.policy.retriesEnabled;
    if (config.transport.enabled) {
        for (const auto& unit : units) {
            const auto& agentStats = unit.uploadAgent->stats();
            report.uploadRounds += agentStats.rounds;
            report.framesSent += agentStats.framesSent;
            report.retransmits += agentStats.retransmits;
            report.retryBudgetExhausted += agentStats.retryBudgetExhausted;
            report.acksReceived += agentStats.acksReceived;
            report.staleAcks += agentStats.staleAcks;
            report.bytesSent += agentStats.bytesSent;
            report.backoffWaitSeconds += agentStats.backoffWait.asSecondsF();
            for (const transport::Channel* channel :
                 {unit.dataChannel.get(), unit.ackChannel.get()}) {
                const auto& stats = channel->stats();
                report.framesLost += stats.framesLost;
                report.framesDuplicated += stats.framesDuplicated;
                report.framesReordered += stats.framesReordered;
                report.outageDrops += stats.outageDrops;
                report.bytesOnWire += stats.bytesOffered;
                report.framesDelivered += stats.framesDelivered;
                report.bytesDelivered += stats.bytesDelivered;
            }
            report.deliveryLatency.merge(unit.dataChannel->stats().latency);
        }
        const auto& reassembly = server.reassembler().stats();
        report.framesRejected = reassembly.framesRejected;
        report.duplicateFrames = reassembly.duplicates;
        report.segmentsStored = reassembly.segmentsStored;

        result.collectedLogs = server.collectedLogs();
        result.truncatedUploadsIgnored = server.truncatedUploadsIgnored();
        std::map<std::string, std::size_t> deliveredByPhone;
        for (const auto& log : result.collectedLogs) {
            const auto records = logger::parseLogFile(log.logFileContent).size();
            deliveredByPhone[log.phoneName] = records;
            report.recordsDelivered += records;
            report.payloadBytesDelivered += log.logFileContent.size();
        }
        for (const auto& log : result.logs) {
            const auto injected = logger::parseLogFile(log.logFileContent).size();
            report.recordsInjected += injected;
            // Measured coverage: records that reached the server vs records
            // the phone wrote.  Finer than the server's own segment view —
            // bytes lost off the growing tail segment hide inside a
            // segment the server already holds, so `server.coverage` can
            // read 100% while records are missing.
            const auto it = deliveredByPhone.find(log.phoneName);
            const auto delivered = it != deliveredByPhone.end() ? it->second : 0;
            const double coverage =
                injected == 0 ? 1.0
                              : std::min(1.0, static_cast<double>(delivered) /
                                                  static_cast<double>(injected));
            report.coverageByPhone[log.phoneName] = coverage;
        }
        // Stamp the measured coverage onto the collected logs so the
        // analysis dataset flags partial-log phones.
        for (auto& log : result.collectedLogs) {
            const auto it = report.coverageByPhone.find(log.phoneName);
            if (it != report.coverageByPhone.end()) {
                log.coverage = std::min(log.coverage, it->second);
            }
        }
    }

    // Metric publication happens once, after the run: the hot paths keep
    // their plain struct counters and the registry stays a deterministic
    // function of the campaign (never of the host).
    if (auto* registry = config.obs.metrics) {
        registry->counter("sim", "events_dispatched", "Simulator events fired")
            .inc(result.simulatorEvents);
        registry
            ->gauge("sim", "campaign_days", "Configured campaign length in days")
            .set(config.campaign.asHoursF() / 24.0);
        registry->gauge("fleet", "phones", "Phones enrolled in the campaign")
            .set(static_cast<double>(config.phoneCount));
        registry->counter("fleet", "boots", "Device boots across the fleet")
            .inc(result.totalBoots);
        registry->counter("fleet", "panics_injected", "Panics raised by the injectors")
            .inc(result.panicsInjected);
        registry->counter("fleet", "hangs_injected", "Freezes raised by the injectors")
            .inc(result.hangsInjected);
        registry
            ->counter("fleet", "spontaneous_reboots_injected",
                      "Spontaneous reboots raised by the injectors")
            .inc(result.spontaneousRebootsInjected);
        registry
            ->counter("fleet", "output_failures_injected",
                      "Output (value) failures raised by the injectors")
            .inc(result.outputFailuresInjected);
        registry->counter("fleet", "user_reports_filed", "User reports filed")
            .inc(result.userReportsFiled);
        registry->counter("logger", "heartbeats", "ALIVE heartbeats written to flash")
            .inc(heartbeatsWritten);
        registry->counter("logger", "panics_recorded", "Panic records written")
            .inc(panicsLogged);
        registry->counter("logger", "boots_recorded", "Boot records written")
            .inc(bootsLogged);
        registry
            ->counter("logger", "runapp_snapshots",
                      "Running-applications snapshots written")
            .inc(snapshotsWritten);
        registry
            ->counter("logger", "record_anomalies",
                      "Torn or malformed beats-file tails seen at boot")
            .inc(result.loggerRecordAnomalies);
        registry
            ->counter("logger", "daemon_deaths",
                      "Logger daemons killed while the device stayed up")
            .inc(result.loggerDaemonDeaths);
        if (planeRegistry != nullptr) {
            const osfault::CampaignPlaneStats& planes = result.osfault;
            registry
                ->counter("osfault", "flash_activations",
                          "Flash-plane fault activations")
                .inc(planes.flash.activations);
            registry->counter("osfault", "flash_bit_flips", "Flash bits flipped")
                .inc(planes.flash.bitFlips);
            registry
                ->counter("osfault", "flash_torn_writes", "Flash writes torn")
                .inc(planes.flash.tornWrites);
            registry
                ->counter("osfault", "flash_dropped_writes",
                          "Flash writes silently dropped")
                .inc(planes.flash.droppedWrites);
            registry
                ->counter("osfault", "memory_episodes",
                          "Memory-pressure episodes applied")
                .inc(planes.memory.episodes);
            registry
                ->counter("osfault", "memory_oom_kills",
                          "Logger daemons OOM-killed by memory pressure")
                .inc(planes.memory.oomKills);
            registry
                ->counter("osfault", "memory_restarts",
                          "Watchdog restarts of the logger daemon")
                .inc(planes.memory.restarts);
            registry->counter("osfault", "clock_jumps", "Clock jumps applied")
                .inc(planes.clock.jumps);
            registry
                ->counter("osfault", "clock_monotonicity_violations",
                          "Backward steps observed by clock readers")
                .inc(planes.clock.monotonicityViolations);
            registry
                ->counter("osfault", "radio_activations",
                          "Radio-plane fault activations")
                .inc(planes.radio.activations);
            registry
                ->counter("osfault", "radio_link_drops", "Radio link drops")
                .inc(planes.radio.linkDrops);
            registry
                ->counter("osfault", "radio_modem_resets", "Modem resets")
                .inc(planes.radio.modemResets);
        }
        transport::publishTransportMetrics(report, *registry);
        if (provenance != nullptr) provenance->publishMetrics(*registry);
    }
    return result;
}

}  // namespace symfail::fleet
