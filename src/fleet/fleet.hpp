// The deployment campaign (Section 6's experimental setup).
//
// 25 Symbian smart phones — students, researchers and professors in Italy
// and the USA — running the failure logger under normal use for 14
// months, with staggered enrollment (the deployment began in September
// 2005 and phones joined over time, which is why the paper's observed
// phone-hours are well below 25 x 14 months).
//
// The fleet derives the fault-activation rates from the paper's *rates*
// (MTBFr 313 h, MTBS 250 h, one panic per ~285 wall-clock hours), so the
// regenerated tables match the paper in shape and rate regardless of the
// configured campaign length; raw counts scale with observed time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/dataset.hpp"
#include "analysis/evaluator.hpp"
#include "faults/rates.hpp"
#include "obs/accountant.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "logger/logger.hpp"
#include "logger/user_reports.hpp"
#include "osfault/registry.hpp"
#include "phone/device.hpp"
#include "phone/ground_truth.hpp"
#include "transport/channel.hpp"
#include "transport/metrics.hpp"
#include "transport/upload_agent.hpp"

namespace symfail::fleet {

class CampaignObserver;

/// Collection-path configuration: how each phone's Log File travels to the
/// collection server.  Default: chunked uploads over a lossy GPRS-like
/// channel with retries — the realistic setting; disable for the ideal
/// end-of-campaign handoff only.
struct TransportOptions {
    bool enabled = true;
    /// Phone -> server path (frames).
    transport::ChannelConfig dataChannel = transport::ChannelConfig::gprs();
    /// Server -> phone path (acks).
    transport::ChannelConfig ackChannel = transport::ChannelConfig::gprs();
    transport::UploadPolicy policy{};
};

/// Observability attachments (all non-owning, all optional).  Attaching
/// any of them never perturbs the campaign: traces are keyed to simulated
/// time, metrics are published after the run, and the profiler only reads
/// the host clock around dispatches.  With all three null the campaign is
/// bit-identical to a build without observability.
struct ObsOptions {
    obs::TraceSink* trace{nullptr};
    obs::MetricsRegistry* metrics{nullptr};
    obs::CampaignProfiler* profiler{nullptr};
    /// Streaming campaign observer (the fleet-health monitor).  Receives
    /// the server's ingest stream plus lifecycle callbacks; read-only with
    /// respect to the campaign (see fleet/observer.hpp for the contract).
    CampaignObserver* monitor{nullptr};
    /// End-to-end failure provenance: assigns every logger record a
    /// lineage, stamps it through log -> chunking -> wire -> server ->
    /// monitor, and resolves a terminal outcome at campaign end (the
    /// tracker is finalized inside runCampaign).  Like the other
    /// attachments it never perturbs the campaign.  When `trace` is also
    /// set, failure records additionally render as Perfetto flow chains.
    obs::ProvenanceTracker* provenance{nullptr};
    /// Capacity accounting: a periodic read-only sweep records each
    /// subsystem's approxMemoryBytes() into the ledger ("simkernel",
    /// "phone", "logger", "transport", "server", "monitor"), plus one
    /// final sweep at campaign end.  Values derive from simulated state
    /// only, so the ledger is bit-identical across runs and the campaign
    /// tables are bit-identical with accounting on or off.
    obs::ResourceAccountant* accountant{nullptr};
    /// Simulated-clock cadence of the accounting sweep.
    sim::Duration accountingInterval = sim::Duration::hours(24);
};

/// Campaign configuration.
struct FleetConfig {
    int phoneCount = 25;
    sim::Duration campaign = sim::Duration::days(425);  ///< ~14 months
    /// Phones join uniformly over this window from campaign start.
    sim::Duration enrollmentWindow = sim::Duration::days(340);
    std::uint64_t seed = 2007;
    logger::LoggerConfig loggerConfig{};
    /// Symbian version mix: mostly 8.0, as in the study.
    std::vector<std::string> versionPool{"6.1", "7.0", "8.0", "8.0", "8.0", "9.0"};

    /// Paper rates used to derive targets (events per wall-clock hour).
    double freezesPerHour = 1.0 / 313.0;
    double selfShutdownsPerHour = 1.0 / 250.0;
    double panicsPerHour = 396.0 / 112'680.0;
    /// Output (value) failures: the forum study makes them the most common
    /// failure type; modelled at roughly twice the freeze rate.
    double outputFailuresPerHour = 2.0 / 313.0;
    /// User-report channel for output failures (the future-work
    /// extension); set reportProbability to 0 to disable.
    logger::UserReportConfig userReportConfig{};

    /// Log transport to the collection server.  Purely observational: the
    /// upload path never perturbs device behaviour, so the regenerated
    /// tables are bit-identical with transport on or off.
    TransportOptions transport{};

    /// Tracing, metrics and profiling attachments.
    ObsOptions obs{};

    /// OS-interface fault planes (osfault subsystem).  All rates default
    /// to zero: no planes are constructed and the campaign is bit-identical
    /// to a build without the subsystem.  Plane draws come from a dedicated
    /// seed substream, so enabling a plane never shifts the workload or
    /// fault-injector streams.
    osfault::PlaneConfig osfault{};

    /// Assumed powered-on fraction of observed wall-clock time, used only
    /// to convert targets into background rates (measured behaviour feeds
    /// back through the logs, not through this estimate).
    double assumedOnFraction = 0.85;
};

/// Campaign output: everything the analysis pipeline and the evaluator
/// need, detached from the simulation objects.
struct FleetResult {
    std::vector<analysis::PhoneLog> logs;
    std::vector<std::string> phoneNames;
    std::vector<phone::GroundTruth> truths;  ///< parallel to phoneNames
    faults::FaultRates derivedRates;

    /// What the collection server holds at campaign end (per-phone best
    /// copy, with coverage attached); empty when transport is disabled.
    std::vector<analysis::PhoneLog> collectedLogs;
    /// Transport-layer accounting for the campaign.
    transport::TransportReport transport;
    /// Whole-file uploads the server refused because they carried fewer
    /// records than the copy it already held.
    std::uint64_t truncatedUploadsIgnored{0};

    // Fleet-level ground totals (from the injectors).
    std::uint64_t panicsInjected{0};
    std::uint64_t hangsInjected{0};
    std::uint64_t spontaneousRebootsInjected{0};
    std::uint64_t outputFailuresInjected{0};
    std::uint64_t userReportsFiled{0};
    std::uint64_t totalBoots{0};
    std::uint64_t simulatorEvents{0};
    /// Largest pending-event count seen at any dispatch (always tracked;
    /// deterministic).
    std::size_t queueDepthPeak{0};

    /// Fault-plane activity (all zeros when no planes were enabled).
    osfault::CampaignPlaneStats osfault;
    /// Logger-side beats-file anomalies observed at boot classification
    /// (torn tails + malformed lines), summed over phones.
    std::uint64_t loggerRecordAnomalies{0};
    /// Logger daemons that died under the logger (OOM-kill), summed.
    std::uint64_t loggerDaemonDeaths{0};

    /// Truth map view for the evaluator (pointers into `truths`).
    [[nodiscard]] analysis::TruthMap truthMap() const;
};

/// Derives the fault StudyPlan from a fleet configuration (exposed for
/// tests and the calibration report).
[[nodiscard]] faults::StudyPlan derivePlan(const FleetConfig& config);

/// Expected observed wall-clock phone-hours under the staggered
/// enrollment.
[[nodiscard]] double expectedObservedHours(const FleetConfig& config);

/// Runs the whole campaign; deterministic for a given config.
[[nodiscard]] FleetResult runCampaign(const FleetConfig& config);

}  // namespace symfail::fleet
