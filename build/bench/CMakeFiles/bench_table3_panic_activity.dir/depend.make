# Empty dependencies file for bench_table3_panic_activity.
# This may be replaced when dependencies are built.
