file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_panic_activity.dir/bench_table3_panic_activity.cpp.o"
  "CMakeFiles/bench_table3_panic_activity.dir/bench_table3_panic_activity.cpp.o.d"
  "bench_table3_panic_activity"
  "bench_table3_panic_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_panic_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
