file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_forum.dir/bench_table1_forum.cpp.o"
  "CMakeFiles/bench_table1_forum.dir/bench_table1_forum.cpp.o.d"
  "bench_table1_forum"
  "bench_table1_forum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_forum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
