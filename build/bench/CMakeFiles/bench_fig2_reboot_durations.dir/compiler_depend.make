# Empty compiler generated dependencies file for bench_fig2_reboot_durations.
# This may be replaced when dependencies are built.
