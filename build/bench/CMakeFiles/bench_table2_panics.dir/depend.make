# Empty dependencies file for bench_table2_panics.
# This may be replaced when dependencies are built.
