
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_panics.cpp" "bench/CMakeFiles/bench_table2_panics.dir/bench_table2_panics.cpp.o" "gcc" "bench/CMakeFiles/bench_table2_panics.dir/bench_table2_panics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/symfail_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fleet/CMakeFiles/symfail_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/symfail_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/symfail_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/logger/CMakeFiles/symfail_logger.dir/DependInfo.cmake"
  "/root/repo/build/src/phone/CMakeFiles/symfail_phone.dir/DependInfo.cmake"
  "/root/repo/build/src/symbos/CMakeFiles/symfail_symbos.dir/DependInfo.cmake"
  "/root/repo/build/src/forum/CMakeFiles/symfail_forum.dir/DependInfo.cmake"
  "/root/repo/build/src/simkernel/CMakeFiles/symfail_simkernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
