file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_panics.dir/bench_table2_panics.cpp.o"
  "CMakeFiles/bench_table2_panics.dir/bench_table2_panics.cpp.o.d"
  "bench_table2_panics"
  "bench_table2_panics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_panics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
