file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_panic_bursts.dir/bench_fig3_panic_bursts.cpp.o"
  "CMakeFiles/bench_fig3_panic_bursts.dir/bench_fig3_panic_bursts.cpp.o.d"
  "bench_fig3_panic_bursts"
  "bench_fig3_panic_bursts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_panic_bursts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
