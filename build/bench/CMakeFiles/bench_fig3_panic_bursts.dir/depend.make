# Empty dependencies file for bench_fig3_panic_bursts.
# This may be replaced when dependencies are built.
