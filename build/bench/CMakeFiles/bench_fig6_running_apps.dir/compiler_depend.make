# Empty compiler generated dependencies file for bench_fig6_running_apps.
# This may be replaced when dependencies are built.
