# Empty dependencies file for bench_ext_versions.
# This may be replaced when dependencies are built.
