file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_versions.dir/bench_ext_versions.cpp.o"
  "CMakeFiles/bench_ext_versions.dir/bench_ext_versions.cpp.o.d"
  "bench_ext_versions"
  "bench_ext_versions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_versions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
