# Empty dependencies file for bench_baseline_dexc.
# This may be replaced when dependencies are built.
