file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_dexc.dir/bench_baseline_dexc.cpp.o"
  "CMakeFiles/bench_baseline_dexc.dir/bench_baseline_dexc.cpp.o.d"
  "bench_baseline_dexc"
  "bench_baseline_dexc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_dexc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
