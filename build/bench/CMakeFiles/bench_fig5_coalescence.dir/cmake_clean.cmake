file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_coalescence.dir/bench_fig5_coalescence.cpp.o"
  "CMakeFiles/bench_fig5_coalescence.dir/bench_fig5_coalescence.cpp.o.d"
  "bench_fig5_coalescence"
  "bench_fig5_coalescence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_coalescence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
