# Empty dependencies file for bench_fig5_coalescence.
# This may be replaced when dependencies are built.
