# Empty dependencies file for bench_ext_output_failures.
# This may be replaced when dependencies are built.
