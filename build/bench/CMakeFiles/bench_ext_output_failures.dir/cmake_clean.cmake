file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_output_failures.dir/bench_ext_output_failures.cpp.o"
  "CMakeFiles/bench_ext_output_failures.dir/bench_ext_output_failures.cpp.o.d"
  "bench_ext_output_failures"
  "bench_ext_output_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_output_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
