# Empty dependencies file for bench_headline_mtbf.
# This may be replaced when dependencies are built.
