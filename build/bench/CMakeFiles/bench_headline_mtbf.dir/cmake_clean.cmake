file(REMOVE_RECURSE
  "CMakeFiles/bench_headline_mtbf.dir/bench_headline_mtbf.cpp.o"
  "CMakeFiles/bench_headline_mtbf.dir/bench_headline_mtbf.cpp.o.d"
  "bench_headline_mtbf"
  "bench_headline_mtbf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_headline_mtbf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
