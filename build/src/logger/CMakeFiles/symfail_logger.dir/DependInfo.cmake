
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logger/dexc.cpp" "src/logger/CMakeFiles/symfail_logger.dir/dexc.cpp.o" "gcc" "src/logger/CMakeFiles/symfail_logger.dir/dexc.cpp.o.d"
  "/root/repo/src/logger/logger.cpp" "src/logger/CMakeFiles/symfail_logger.dir/logger.cpp.o" "gcc" "src/logger/CMakeFiles/symfail_logger.dir/logger.cpp.o.d"
  "/root/repo/src/logger/records.cpp" "src/logger/CMakeFiles/symfail_logger.dir/records.cpp.o" "gcc" "src/logger/CMakeFiles/symfail_logger.dir/records.cpp.o.d"
  "/root/repo/src/logger/user_reports.cpp" "src/logger/CMakeFiles/symfail_logger.dir/user_reports.cpp.o" "gcc" "src/logger/CMakeFiles/symfail_logger.dir/user_reports.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phone/CMakeFiles/symfail_phone.dir/DependInfo.cmake"
  "/root/repo/build/src/symbos/CMakeFiles/symfail_symbos.dir/DependInfo.cmake"
  "/root/repo/build/src/simkernel/CMakeFiles/symfail_simkernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
