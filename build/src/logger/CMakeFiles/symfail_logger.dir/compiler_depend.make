# Empty compiler generated dependencies file for symfail_logger.
# This may be replaced when dependencies are built.
