file(REMOVE_RECURSE
  "CMakeFiles/symfail_logger.dir/dexc.cpp.o"
  "CMakeFiles/symfail_logger.dir/dexc.cpp.o.d"
  "CMakeFiles/symfail_logger.dir/logger.cpp.o"
  "CMakeFiles/symfail_logger.dir/logger.cpp.o.d"
  "CMakeFiles/symfail_logger.dir/records.cpp.o"
  "CMakeFiles/symfail_logger.dir/records.cpp.o.d"
  "CMakeFiles/symfail_logger.dir/user_reports.cpp.o"
  "CMakeFiles/symfail_logger.dir/user_reports.cpp.o.d"
  "libsymfail_logger.a"
  "libsymfail_logger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symfail_logger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
