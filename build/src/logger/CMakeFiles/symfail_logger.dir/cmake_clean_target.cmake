file(REMOVE_RECURSE
  "libsymfail_logger.a"
)
