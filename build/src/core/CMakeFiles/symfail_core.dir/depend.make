# Empty dependencies file for symfail_core.
# This may be replaced when dependencies are built.
