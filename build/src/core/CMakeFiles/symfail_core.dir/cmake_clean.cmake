file(REMOVE_RECURSE
  "CMakeFiles/symfail_core.dir/export.cpp.o"
  "CMakeFiles/symfail_core.dir/export.cpp.o.d"
  "CMakeFiles/symfail_core.dir/logio.cpp.o"
  "CMakeFiles/symfail_core.dir/logio.cpp.o.d"
  "CMakeFiles/symfail_core.dir/render.cpp.o"
  "CMakeFiles/symfail_core.dir/render.cpp.o.d"
  "CMakeFiles/symfail_core.dir/study.cpp.o"
  "CMakeFiles/symfail_core.dir/study.cpp.o.d"
  "libsymfail_core.a"
  "libsymfail_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symfail_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
