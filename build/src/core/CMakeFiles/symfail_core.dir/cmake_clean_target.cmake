file(REMOVE_RECURSE
  "libsymfail_core.a"
)
