file(REMOVE_RECURSE
  "CMakeFiles/symfail_analysis.dir/apps_correlation.cpp.o"
  "CMakeFiles/symfail_analysis.dir/apps_correlation.cpp.o.d"
  "CMakeFiles/symfail_analysis.dir/coalescence.cpp.o"
  "CMakeFiles/symfail_analysis.dir/coalescence.cpp.o.d"
  "CMakeFiles/symfail_analysis.dir/dataset.cpp.o"
  "CMakeFiles/symfail_analysis.dir/dataset.cpp.o.d"
  "CMakeFiles/symfail_analysis.dir/discriminator.cpp.o"
  "CMakeFiles/symfail_analysis.dir/discriminator.cpp.o.d"
  "CMakeFiles/symfail_analysis.dir/evaluator.cpp.o"
  "CMakeFiles/symfail_analysis.dir/evaluator.cpp.o.d"
  "CMakeFiles/symfail_analysis.dir/mtbf.cpp.o"
  "CMakeFiles/symfail_analysis.dir/mtbf.cpp.o.d"
  "CMakeFiles/symfail_analysis.dir/panic_stats.cpp.o"
  "CMakeFiles/symfail_analysis.dir/panic_stats.cpp.o.d"
  "CMakeFiles/symfail_analysis.dir/prediction.cpp.o"
  "CMakeFiles/symfail_analysis.dir/prediction.cpp.o.d"
  "CMakeFiles/symfail_analysis.dir/reliability.cpp.o"
  "CMakeFiles/symfail_analysis.dir/reliability.cpp.o.d"
  "CMakeFiles/symfail_analysis.dir/tables.cpp.o"
  "CMakeFiles/symfail_analysis.dir/tables.cpp.o.d"
  "CMakeFiles/symfail_analysis.dir/version_stats.cpp.o"
  "CMakeFiles/symfail_analysis.dir/version_stats.cpp.o.d"
  "libsymfail_analysis.a"
  "libsymfail_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symfail_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
