# Empty dependencies file for symfail_analysis.
# This may be replaced when dependencies are built.
