
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/apps_correlation.cpp" "src/analysis/CMakeFiles/symfail_analysis.dir/apps_correlation.cpp.o" "gcc" "src/analysis/CMakeFiles/symfail_analysis.dir/apps_correlation.cpp.o.d"
  "/root/repo/src/analysis/coalescence.cpp" "src/analysis/CMakeFiles/symfail_analysis.dir/coalescence.cpp.o" "gcc" "src/analysis/CMakeFiles/symfail_analysis.dir/coalescence.cpp.o.d"
  "/root/repo/src/analysis/dataset.cpp" "src/analysis/CMakeFiles/symfail_analysis.dir/dataset.cpp.o" "gcc" "src/analysis/CMakeFiles/symfail_analysis.dir/dataset.cpp.o.d"
  "/root/repo/src/analysis/discriminator.cpp" "src/analysis/CMakeFiles/symfail_analysis.dir/discriminator.cpp.o" "gcc" "src/analysis/CMakeFiles/symfail_analysis.dir/discriminator.cpp.o.d"
  "/root/repo/src/analysis/evaluator.cpp" "src/analysis/CMakeFiles/symfail_analysis.dir/evaluator.cpp.o" "gcc" "src/analysis/CMakeFiles/symfail_analysis.dir/evaluator.cpp.o.d"
  "/root/repo/src/analysis/mtbf.cpp" "src/analysis/CMakeFiles/symfail_analysis.dir/mtbf.cpp.o" "gcc" "src/analysis/CMakeFiles/symfail_analysis.dir/mtbf.cpp.o.d"
  "/root/repo/src/analysis/panic_stats.cpp" "src/analysis/CMakeFiles/symfail_analysis.dir/panic_stats.cpp.o" "gcc" "src/analysis/CMakeFiles/symfail_analysis.dir/panic_stats.cpp.o.d"
  "/root/repo/src/analysis/prediction.cpp" "src/analysis/CMakeFiles/symfail_analysis.dir/prediction.cpp.o" "gcc" "src/analysis/CMakeFiles/symfail_analysis.dir/prediction.cpp.o.d"
  "/root/repo/src/analysis/reliability.cpp" "src/analysis/CMakeFiles/symfail_analysis.dir/reliability.cpp.o" "gcc" "src/analysis/CMakeFiles/symfail_analysis.dir/reliability.cpp.o.d"
  "/root/repo/src/analysis/tables.cpp" "src/analysis/CMakeFiles/symfail_analysis.dir/tables.cpp.o" "gcc" "src/analysis/CMakeFiles/symfail_analysis.dir/tables.cpp.o.d"
  "/root/repo/src/analysis/version_stats.cpp" "src/analysis/CMakeFiles/symfail_analysis.dir/version_stats.cpp.o" "gcc" "src/analysis/CMakeFiles/symfail_analysis.dir/version_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logger/CMakeFiles/symfail_logger.dir/DependInfo.cmake"
  "/root/repo/build/src/phone/CMakeFiles/symfail_phone.dir/DependInfo.cmake"
  "/root/repo/build/src/symbos/CMakeFiles/symfail_symbos.dir/DependInfo.cmake"
  "/root/repo/build/src/simkernel/CMakeFiles/symfail_simkernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
