file(REMOVE_RECURSE
  "libsymfail_analysis.a"
)
