# Empty compiler generated dependencies file for symfail_symbos.
# This may be replaced when dependencies are built.
