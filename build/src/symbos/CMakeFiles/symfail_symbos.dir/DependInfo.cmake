
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/symbos/active.cpp" "src/symbos/CMakeFiles/symfail_symbos.dir/active.cpp.o" "gcc" "src/symbos/CMakeFiles/symfail_symbos.dir/active.cpp.o.d"
  "/root/repo/src/symbos/cleanup.cpp" "src/symbos/CMakeFiles/symfail_symbos.dir/cleanup.cpp.o" "gcc" "src/symbos/CMakeFiles/symfail_symbos.dir/cleanup.cpp.o.d"
  "/root/repo/src/symbos/cobject.cpp" "src/symbos/CMakeFiles/symfail_symbos.dir/cobject.cpp.o" "gcc" "src/symbos/CMakeFiles/symfail_symbos.dir/cobject.cpp.o.d"
  "/root/repo/src/symbos/descriptor.cpp" "src/symbos/CMakeFiles/symfail_symbos.dir/descriptor.cpp.o" "gcc" "src/symbos/CMakeFiles/symfail_symbos.dir/descriptor.cpp.o.d"
  "/root/repo/src/symbos/heap.cpp" "src/symbos/CMakeFiles/symfail_symbos.dir/heap.cpp.o" "gcc" "src/symbos/CMakeFiles/symfail_symbos.dir/heap.cpp.o.d"
  "/root/repo/src/symbos/ipc.cpp" "src/symbos/CMakeFiles/symfail_symbos.dir/ipc.cpp.o" "gcc" "src/symbos/CMakeFiles/symfail_symbos.dir/ipc.cpp.o.d"
  "/root/repo/src/symbos/kernel.cpp" "src/symbos/CMakeFiles/symfail_symbos.dir/kernel.cpp.o" "gcc" "src/symbos/CMakeFiles/symfail_symbos.dir/kernel.cpp.o.d"
  "/root/repo/src/symbos/panic.cpp" "src/symbos/CMakeFiles/symfail_symbos.dir/panic.cpp.o" "gcc" "src/symbos/CMakeFiles/symfail_symbos.dir/panic.cpp.o.d"
  "/root/repo/src/symbos/sysservers.cpp" "src/symbos/CMakeFiles/symfail_symbos.dir/sysservers.cpp.o" "gcc" "src/symbos/CMakeFiles/symfail_symbos.dir/sysservers.cpp.o.d"
  "/root/repo/src/symbos/timer.cpp" "src/symbos/CMakeFiles/symfail_symbos.dir/timer.cpp.o" "gcc" "src/symbos/CMakeFiles/symfail_symbos.dir/timer.cpp.o.d"
  "/root/repo/src/symbos/uiframework.cpp" "src/symbos/CMakeFiles/symfail_symbos.dir/uiframework.cpp.o" "gcc" "src/symbos/CMakeFiles/symfail_symbos.dir/uiframework.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simkernel/CMakeFiles/symfail_simkernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
