file(REMOVE_RECURSE
  "libsymfail_symbos.a"
)
