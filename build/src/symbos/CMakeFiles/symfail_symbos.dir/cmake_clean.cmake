file(REMOVE_RECURSE
  "CMakeFiles/symfail_symbos.dir/active.cpp.o"
  "CMakeFiles/symfail_symbos.dir/active.cpp.o.d"
  "CMakeFiles/symfail_symbos.dir/cleanup.cpp.o"
  "CMakeFiles/symfail_symbos.dir/cleanup.cpp.o.d"
  "CMakeFiles/symfail_symbos.dir/cobject.cpp.o"
  "CMakeFiles/symfail_symbos.dir/cobject.cpp.o.d"
  "CMakeFiles/symfail_symbos.dir/descriptor.cpp.o"
  "CMakeFiles/symfail_symbos.dir/descriptor.cpp.o.d"
  "CMakeFiles/symfail_symbos.dir/heap.cpp.o"
  "CMakeFiles/symfail_symbos.dir/heap.cpp.o.d"
  "CMakeFiles/symfail_symbos.dir/ipc.cpp.o"
  "CMakeFiles/symfail_symbos.dir/ipc.cpp.o.d"
  "CMakeFiles/symfail_symbos.dir/kernel.cpp.o"
  "CMakeFiles/symfail_symbos.dir/kernel.cpp.o.d"
  "CMakeFiles/symfail_symbos.dir/panic.cpp.o"
  "CMakeFiles/symfail_symbos.dir/panic.cpp.o.d"
  "CMakeFiles/symfail_symbos.dir/sysservers.cpp.o"
  "CMakeFiles/symfail_symbos.dir/sysservers.cpp.o.d"
  "CMakeFiles/symfail_symbos.dir/timer.cpp.o"
  "CMakeFiles/symfail_symbos.dir/timer.cpp.o.d"
  "CMakeFiles/symfail_symbos.dir/uiframework.cpp.o"
  "CMakeFiles/symfail_symbos.dir/uiframework.cpp.o.d"
  "libsymfail_symbos.a"
  "libsymfail_symbos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symfail_symbos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
