# CMake generated Testfile for 
# Source directory: /root/repo/src/symbos
# Build directory: /root/repo/build/src/symbos
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
