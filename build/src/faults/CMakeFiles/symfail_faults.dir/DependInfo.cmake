
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faults/catalog.cpp" "src/faults/CMakeFiles/symfail_faults.dir/catalog.cpp.o" "gcc" "src/faults/CMakeFiles/symfail_faults.dir/catalog.cpp.o.d"
  "/root/repo/src/faults/drivers.cpp" "src/faults/CMakeFiles/symfail_faults.dir/drivers.cpp.o" "gcc" "src/faults/CMakeFiles/symfail_faults.dir/drivers.cpp.o.d"
  "/root/repo/src/faults/injector.cpp" "src/faults/CMakeFiles/symfail_faults.dir/injector.cpp.o" "gcc" "src/faults/CMakeFiles/symfail_faults.dir/injector.cpp.o.d"
  "/root/repo/src/faults/rates.cpp" "src/faults/CMakeFiles/symfail_faults.dir/rates.cpp.o" "gcc" "src/faults/CMakeFiles/symfail_faults.dir/rates.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phone/CMakeFiles/symfail_phone.dir/DependInfo.cmake"
  "/root/repo/build/src/symbos/CMakeFiles/symfail_symbos.dir/DependInfo.cmake"
  "/root/repo/build/src/simkernel/CMakeFiles/symfail_simkernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
