# Empty compiler generated dependencies file for symfail_faults.
# This may be replaced when dependencies are built.
