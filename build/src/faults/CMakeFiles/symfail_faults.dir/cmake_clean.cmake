file(REMOVE_RECURSE
  "CMakeFiles/symfail_faults.dir/catalog.cpp.o"
  "CMakeFiles/symfail_faults.dir/catalog.cpp.o.d"
  "CMakeFiles/symfail_faults.dir/drivers.cpp.o"
  "CMakeFiles/symfail_faults.dir/drivers.cpp.o.d"
  "CMakeFiles/symfail_faults.dir/injector.cpp.o"
  "CMakeFiles/symfail_faults.dir/injector.cpp.o.d"
  "CMakeFiles/symfail_faults.dir/rates.cpp.o"
  "CMakeFiles/symfail_faults.dir/rates.cpp.o.d"
  "libsymfail_faults.a"
  "libsymfail_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symfail_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
