file(REMOVE_RECURSE
  "libsymfail_faults.a"
)
