file(REMOVE_RECURSE
  "libsymfail_forum.a"
)
