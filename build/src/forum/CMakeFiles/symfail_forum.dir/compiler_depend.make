# Empty compiler generated dependencies file for symfail_forum.
# This may be replaced when dependencies are built.
