
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/forum/classifier.cpp" "src/forum/CMakeFiles/symfail_forum.dir/classifier.cpp.o" "gcc" "src/forum/CMakeFiles/symfail_forum.dir/classifier.cpp.o.d"
  "/root/repo/src/forum/generator.cpp" "src/forum/CMakeFiles/symfail_forum.dir/generator.cpp.o" "gcc" "src/forum/CMakeFiles/symfail_forum.dir/generator.cpp.o.d"
  "/root/repo/src/forum/study.cpp" "src/forum/CMakeFiles/symfail_forum.dir/study.cpp.o" "gcc" "src/forum/CMakeFiles/symfail_forum.dir/study.cpp.o.d"
  "/root/repo/src/forum/taxonomy.cpp" "src/forum/CMakeFiles/symfail_forum.dir/taxonomy.cpp.o" "gcc" "src/forum/CMakeFiles/symfail_forum.dir/taxonomy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simkernel/CMakeFiles/symfail_simkernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
