file(REMOVE_RECURSE
  "CMakeFiles/symfail_forum.dir/classifier.cpp.o"
  "CMakeFiles/symfail_forum.dir/classifier.cpp.o.d"
  "CMakeFiles/symfail_forum.dir/generator.cpp.o"
  "CMakeFiles/symfail_forum.dir/generator.cpp.o.d"
  "CMakeFiles/symfail_forum.dir/study.cpp.o"
  "CMakeFiles/symfail_forum.dir/study.cpp.o.d"
  "CMakeFiles/symfail_forum.dir/taxonomy.cpp.o"
  "CMakeFiles/symfail_forum.dir/taxonomy.cpp.o.d"
  "libsymfail_forum.a"
  "libsymfail_forum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symfail_forum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
