file(REMOVE_RECURSE
  "CMakeFiles/symfail_phone.dir/apps.cpp.o"
  "CMakeFiles/symfail_phone.dir/apps.cpp.o.d"
  "CMakeFiles/symfail_phone.dir/device.cpp.o"
  "CMakeFiles/symfail_phone.dir/device.cpp.o.d"
  "CMakeFiles/symfail_phone.dir/flash.cpp.o"
  "CMakeFiles/symfail_phone.dir/flash.cpp.o.d"
  "CMakeFiles/symfail_phone.dir/ground_truth.cpp.o"
  "CMakeFiles/symfail_phone.dir/ground_truth.cpp.o.d"
  "CMakeFiles/symfail_phone.dir/user.cpp.o"
  "CMakeFiles/symfail_phone.dir/user.cpp.o.d"
  "libsymfail_phone.a"
  "libsymfail_phone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symfail_phone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
