
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phone/apps.cpp" "src/phone/CMakeFiles/symfail_phone.dir/apps.cpp.o" "gcc" "src/phone/CMakeFiles/symfail_phone.dir/apps.cpp.o.d"
  "/root/repo/src/phone/device.cpp" "src/phone/CMakeFiles/symfail_phone.dir/device.cpp.o" "gcc" "src/phone/CMakeFiles/symfail_phone.dir/device.cpp.o.d"
  "/root/repo/src/phone/flash.cpp" "src/phone/CMakeFiles/symfail_phone.dir/flash.cpp.o" "gcc" "src/phone/CMakeFiles/symfail_phone.dir/flash.cpp.o.d"
  "/root/repo/src/phone/ground_truth.cpp" "src/phone/CMakeFiles/symfail_phone.dir/ground_truth.cpp.o" "gcc" "src/phone/CMakeFiles/symfail_phone.dir/ground_truth.cpp.o.d"
  "/root/repo/src/phone/user.cpp" "src/phone/CMakeFiles/symfail_phone.dir/user.cpp.o" "gcc" "src/phone/CMakeFiles/symfail_phone.dir/user.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/symbos/CMakeFiles/symfail_symbos.dir/DependInfo.cmake"
  "/root/repo/build/src/simkernel/CMakeFiles/symfail_simkernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
