# Empty compiler generated dependencies file for symfail_phone.
# This may be replaced when dependencies are built.
