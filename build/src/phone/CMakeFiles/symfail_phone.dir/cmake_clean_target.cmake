file(REMOVE_RECURSE
  "libsymfail_phone.a"
)
