file(REMOVE_RECURSE
  "libsymfail_simkernel.a"
)
