
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simkernel/event_queue.cpp" "src/simkernel/CMakeFiles/symfail_simkernel.dir/event_queue.cpp.o" "gcc" "src/simkernel/CMakeFiles/symfail_simkernel.dir/event_queue.cpp.o.d"
  "/root/repo/src/simkernel/histogram.cpp" "src/simkernel/CMakeFiles/symfail_simkernel.dir/histogram.cpp.o" "gcc" "src/simkernel/CMakeFiles/symfail_simkernel.dir/histogram.cpp.o.d"
  "/root/repo/src/simkernel/rng.cpp" "src/simkernel/CMakeFiles/symfail_simkernel.dir/rng.cpp.o" "gcc" "src/simkernel/CMakeFiles/symfail_simkernel.dir/rng.cpp.o.d"
  "/root/repo/src/simkernel/simulator.cpp" "src/simkernel/CMakeFiles/symfail_simkernel.dir/simulator.cpp.o" "gcc" "src/simkernel/CMakeFiles/symfail_simkernel.dir/simulator.cpp.o.d"
  "/root/repo/src/simkernel/stats.cpp" "src/simkernel/CMakeFiles/symfail_simkernel.dir/stats.cpp.o" "gcc" "src/simkernel/CMakeFiles/symfail_simkernel.dir/stats.cpp.o.d"
  "/root/repo/src/simkernel/time.cpp" "src/simkernel/CMakeFiles/symfail_simkernel.dir/time.cpp.o" "gcc" "src/simkernel/CMakeFiles/symfail_simkernel.dir/time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
