file(REMOVE_RECURSE
  "CMakeFiles/symfail_simkernel.dir/event_queue.cpp.o"
  "CMakeFiles/symfail_simkernel.dir/event_queue.cpp.o.d"
  "CMakeFiles/symfail_simkernel.dir/histogram.cpp.o"
  "CMakeFiles/symfail_simkernel.dir/histogram.cpp.o.d"
  "CMakeFiles/symfail_simkernel.dir/rng.cpp.o"
  "CMakeFiles/symfail_simkernel.dir/rng.cpp.o.d"
  "CMakeFiles/symfail_simkernel.dir/simulator.cpp.o"
  "CMakeFiles/symfail_simkernel.dir/simulator.cpp.o.d"
  "CMakeFiles/symfail_simkernel.dir/stats.cpp.o"
  "CMakeFiles/symfail_simkernel.dir/stats.cpp.o.d"
  "CMakeFiles/symfail_simkernel.dir/time.cpp.o"
  "CMakeFiles/symfail_simkernel.dir/time.cpp.o.d"
  "libsymfail_simkernel.a"
  "libsymfail_simkernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symfail_simkernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
