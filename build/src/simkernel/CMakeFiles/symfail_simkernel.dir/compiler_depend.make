# Empty compiler generated dependencies file for symfail_simkernel.
# This may be replaced when dependencies are built.
