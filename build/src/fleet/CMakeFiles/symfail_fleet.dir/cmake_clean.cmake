file(REMOVE_RECURSE
  "CMakeFiles/symfail_fleet.dir/collection.cpp.o"
  "CMakeFiles/symfail_fleet.dir/collection.cpp.o.d"
  "CMakeFiles/symfail_fleet.dir/fleet.cpp.o"
  "CMakeFiles/symfail_fleet.dir/fleet.cpp.o.d"
  "libsymfail_fleet.a"
  "libsymfail_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symfail_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
