file(REMOVE_RECURSE
  "libsymfail_fleet.a"
)
