# Empty dependencies file for symfail_fleet.
# This may be replaced when dependencies are built.
