# CMake generated Testfile for 
# Source directory: /root/repo/tools/symfail_cli
# Build directory: /root/repo/build/tools/symfail_cli
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
