file(REMOVE_RECURSE
  "libsymfail_cli_lib.a"
)
