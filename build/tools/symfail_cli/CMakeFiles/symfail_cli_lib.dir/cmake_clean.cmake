file(REMOVE_RECURSE
  "CMakeFiles/symfail_cli_lib.dir/cli.cpp.o"
  "CMakeFiles/symfail_cli_lib.dir/cli.cpp.o.d"
  "libsymfail_cli_lib.a"
  "libsymfail_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symfail_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
