# Empty dependencies file for symfail_cli_lib.
# This may be replaced when dependencies are built.
