# Empty compiler generated dependencies file for symfail.
# This may be replaced when dependencies are built.
