file(REMOVE_RECURSE
  "CMakeFiles/symfail.dir/main.cpp.o"
  "CMakeFiles/symfail.dir/main.cpp.o.d"
  "symfail"
  "symfail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symfail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
