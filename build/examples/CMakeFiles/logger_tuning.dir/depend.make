# Empty dependencies file for logger_tuning.
# This may be replaced when dependencies are built.
