file(REMOVE_RECURSE
  "CMakeFiles/logger_tuning.dir/logger_tuning.cpp.o"
  "CMakeFiles/logger_tuning.dir/logger_tuning.cpp.o.d"
  "logger_tuning"
  "logger_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logger_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
