file(REMOVE_RECURSE
  "CMakeFiles/forum_mining.dir/forum_mining.cpp.o"
  "CMakeFiles/forum_mining.dir/forum_mining.cpp.o.d"
  "forum_mining"
  "forum_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forum_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
