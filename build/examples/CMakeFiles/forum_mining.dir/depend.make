# Empty dependencies file for forum_mining.
# This may be replaced when dependencies are built.
