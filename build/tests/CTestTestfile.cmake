# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/simkernel_test[1]_include.cmake")
include("/root/repo/build/tests/symbos_test[1]_include.cmake")
include("/root/repo/build/tests/symbos_property_test[1]_include.cmake")
include("/root/repo/build/tests/phone_test[1]_include.cmake")
include("/root/repo/build/tests/faults_test[1]_include.cmake")
include("/root/repo/build/tests/logger_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/forum_test[1]_include.cmake")
include("/root/repo/build/tests/fleet_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/reliability_test[1]_include.cmake")
include("/root/repo/build/tests/export_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_property_test[1]_include.cmake")
include("/root/repo/build/tests/twophase_test[1]_include.cmake")
include("/root/repo/build/tests/records_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/calibration_test[1]_include.cmake")
include("/root/repo/build/tests/prediction_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
