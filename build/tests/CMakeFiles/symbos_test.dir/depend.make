# Empty dependencies file for symbos_test.
# This may be replaced when dependencies are built.
