file(REMOVE_RECURSE
  "CMakeFiles/symbos_test.dir/symbos_test.cpp.o"
  "CMakeFiles/symbos_test.dir/symbos_test.cpp.o.d"
  "symbos_test"
  "symbos_test.pdb"
  "symbos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
