file(REMOVE_RECURSE
  "CMakeFiles/forum_test.dir/forum_test.cpp.o"
  "CMakeFiles/forum_test.dir/forum_test.cpp.o.d"
  "forum_test"
  "forum_test.pdb"
  "forum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
