# Empty dependencies file for forum_test.
# This may be replaced when dependencies are built.
