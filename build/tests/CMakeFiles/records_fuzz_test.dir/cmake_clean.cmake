file(REMOVE_RECURSE
  "CMakeFiles/records_fuzz_test.dir/records_fuzz_test.cpp.o"
  "CMakeFiles/records_fuzz_test.dir/records_fuzz_test.cpp.o.d"
  "records_fuzz_test"
  "records_fuzz_test.pdb"
  "records_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/records_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
