# Empty dependencies file for records_fuzz_test.
# This may be replaced when dependencies are built.
