file(REMOVE_RECURSE
  "CMakeFiles/simkernel_test.dir/simkernel_test.cpp.o"
  "CMakeFiles/simkernel_test.dir/simkernel_test.cpp.o.d"
  "simkernel_test"
  "simkernel_test.pdb"
  "simkernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simkernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
