file(REMOVE_RECURSE
  "CMakeFiles/twophase_test.dir/twophase_test.cpp.o"
  "CMakeFiles/twophase_test.dir/twophase_test.cpp.o.d"
  "twophase_test"
  "twophase_test.pdb"
  "twophase_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twophase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
