# Empty dependencies file for symbos_property_test.
# This may be replaced when dependencies are built.
