# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for symbos_property_test.
