file(REMOVE_RECURSE
  "CMakeFiles/symbos_property_test.dir/symbos_property_test.cpp.o"
  "CMakeFiles/symbos_property_test.dir/symbos_property_test.cpp.o.d"
  "symbos_property_test"
  "symbos_property_test.pdb"
  "symbos_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbos_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
