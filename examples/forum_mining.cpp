// The Section 4 study: generate a synthetic four-year forum corpus, mine
// it with the rule classifier, and print Table 1 with the paper's values
// side by side — plus a few raw posts so the corpus is inspectable.
//
// Usage: forum_mining [seed]
#include <cstdio>
#include <cstdlib>

#include "core/render.hpp"
#include "core/study.hpp"
#include "forum/generator.hpp"

int main(int argc, char** argv) {
    using namespace symfail;

    core::StudyConfig config;
    if (argc > 1) {
        config.forumSeed = std::strtoull(argv[1], nullptr, 10);
    }

    // Show a few raw posts first: this is what the classifier works from.
    const auto corpus = forum::generateCorpus(config.forumConfig, config.forumSeed);
    std::printf("=== sample posts (of %zu) ===\n", corpus.size());
    int shown = 0;
    for (const auto& report : corpus) {
        if (shown >= 6) break;
        std::printf("  [%d] %s\n", report.year, report.text.c_str());
        ++shown;
    }
    std::printf("\n");

    const core::FailureStudy study{config};
    const auto result = study.runForumStudy();
    std::printf("%s\n", core::renderTable1(result).c_str());
    std::printf("%s", core::renderForumSummary(result).c_str());
    return 0;
}
