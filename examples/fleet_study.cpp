// The full study: 25 phones, 14 months — regenerates every table and
// figure of the paper's Section 6 in one run, with the ground-truth
// evaluation the original field study could not perform.
//
// Usage: fleet_study [seed] [--csv <dir>]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/export.hpp"
#include "core/render.hpp"
#include "core/study.hpp"

int main(int argc, char** argv) {
    using namespace symfail;

    core::StudyConfig config;
    const char* csvDir = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
            csvDir = argv[++i];
        } else {
            config.fleetConfig.seed = std::strtoull(argv[i], nullptr, 10);
        }
    }

    std::printf("running the %d-phone / %lld-day campaign (seed %llu)...\n\n",
                config.fleetConfig.phoneCount,
                static_cast<long long>(config.fleetConfig.campaign.asDaysF()),
                static_cast<unsigned long long>(config.fleetConfig.seed));

    const core::FailureStudy study{config};
    const auto results = study.runFieldStudy();

    std::printf("%s\n", core::renderHeadline(results).c_str());
    std::printf("%s\n", core::renderFig2(results).c_str());
    std::printf("%s\n", core::renderTable2(results).c_str());
    std::printf("%s\n", core::renderFig3(results).c_str());
    std::printf("%s\n", core::renderFig5(results).c_str());
    std::printf("%s\n", core::renderTable3(results).c_str());
    std::printf("%s\n", core::renderFig6(results).c_str());
    std::printf("%s\n", core::renderTable4(results).c_str());
    std::printf("%s\n", core::renderPerPhone(results).c_str());
    std::printf("%s\n", core::renderEvaluation(results).c_str());

    if (csvDir != nullptr) {
        const auto files = core::exportFieldCsv(results, csvDir);
        std::printf("wrote %zu CSV files to %s\n", files.size(), csvDir);
    }
    return 0;
}
