// Replicated-trial sweep via the library API: how much does transport
// loss move the delivered-record ratio and the measured MTBF, with error
// bars instead of single draws?
//
// Build & run:  ./build/examples/sweep_experiment
#include <cstdio>

#include "experiment/export.hpp"
#include "experiment/grid.hpp"
#include "experiment/runner.hpp"

int main() {
    using namespace symfail;

    // Default cell: a reduced campaign so ten trials stay cheap.
    experiment::Cell defaults;
    defaults.phones = 3;
    defaults.days = 30;

    // Sweep one axis: the data-channel loss probability.
    experiment::GridAxes axes;
    axes.lossPct = {0.0, 10.0, 30.0};
    const auto grid = experiment::Grid::fromAxes(axes, defaults);

    experiment::RunnerOptions options;
    options.trials = 10;
    options.jobs = 4;  // numbers are identical at any jobs value
    options.masterSeed = 2007;
    const experiment::Runner runner{options};
    const auto summary = runner.run(grid);

    std::printf("%s", experiment::renderSweepReport(summary).c_str());

    std::printf("loss sweep, delivery with 95%% CI:\n");
    for (const auto& cell : summary.cells) {
        const auto* delivery = cell.find("transport_delivery_ratio");
        const auto* mtbf = cell.find("mtbf_any_hours");
        if (delivery == nullptr || mtbf == nullptr) continue;
        std::printf("  loss %5.1f%%: delivery %.4f [%.4f, %.4f]  mtbf %6.1f h +- %.1f\n",
                    cell.cell.lossPct, delivery->mean, delivery->ciLow,
                    delivery->ciHigh, mtbf->mean, mtbf->halfWidth());
    }
    return 0;
}
