// Fault-injection walkthrough: drives each of Table 2's twenty panics
// through its real mechanism on a live device and narrates what the
// kernel did about it — terminate the app, reboot the phone, or freeze
// it — demonstrating the recovery-policy behaviour behind Figure 5.
#include <cstdio>

#include "faults/drivers.hpp"
#include "logger/logger.hpp"
#include "phone/device.hpp"
#include "symbos/panic.hpp"

int main() {
    using namespace symfail;

    std::printf("=== fault injection demo: every Table 2 panic, one by one ===\n\n");
    std::printf("%-20s %-14s %-22s %s\n", "panic", "victim kind", "device outcome",
                "meaning");
    std::printf("%.*s\n", 110,
                "--------------------------------------------------------------"
                "--------------------------------------------------");

    for (const auto& row : symbos::paperPanicTable()) {
        // Fresh device per injection so outcomes do not interfere.
        sim::Simulator simulator;
        phone::PhoneDevice::Config config;
        config.name = "demo";
        config.seed = 123;
        phone::PhoneDevice device{simulator, config};
        logger::FailureLogger loggerApp{device};
        device.powerOn();
        simulator.runUntil(sim::TimePoint::origin() + sim::Duration::minutes(5));

        // Victim selection mirrors the injector's outcome policy: core-app
        // panics hit their core app, everything else a scratch user app.
        symbos::ProcessId victim = 0;
        std::string victimKind = "user app";
        if (row.id.category == symbos::PanicCategory::PhoneApp) {
            victim = device.pidOf(phone::kAppTelephone);
            victimKind = "core app";
        } else if (row.id.category == symbos::PanicCategory::MsgsClient) {
            victim = device.pidOf(phone::kProcMsgServer);
            victimKind = "core app";
        } else {
            victim = device.kernel().createProcess("DemoVictim",
                                                   symbos::ProcessKind::UserApp);
        }

        faults::AsyncBag bag;
        faults::driveMechanism(device, victim, row.id, bag);
        simulator.runUntil(simulator.now() + sim::Duration::minutes(2));

        const char* outcome = "app terminated";
        if (device.state() == phone::PhoneDevice::PowerState::Frozen) {
            outcome = "FROZEN";
        } else if (device.state() == phone::PhoneDevice::PowerState::Off) {
            outcome = "SELF-SHUTDOWN";
        } else if (device.bootCount() > 1) {
            outcome = "SELF-SHUTDOWN+reboot";
        }

        const auto meaning = symbos::panicMeaning(row.id);
        std::printf("%-20s %-14s %-22s %.60s...\n",
                    symbos::toString(row.id).c_str(), victimKind.c_str(), outcome,
                    std::string{meaning}.c_str());
    }

    // Bonus: a window-server panic, the freeze mechanism behind the
    // paper's most annoying failure mode.
    {
        sim::Simulator simulator;
        phone::PhoneDevice::Config config;
        config.name = "demo-wserv";
        config.seed = 124;
        phone::PhoneDevice device{simulator, config};
        device.powerOn();
        simulator.runUntil(sim::TimePoint::origin() + sim::Duration::minutes(5));
        faults::AsyncBag bag;
        faults::driveMechanism(device, device.pidOf(phone::kProcWindowServer),
                               symbos::kKernExecAccessViolation, bag);
        std::printf("%-20s %-14s %-22s %s\n", "KERN-EXEC 3", "window server",
                    device.state() == phone::PhoneDevice::PowerState::Frozen
                        ? "FROZEN"
                        : "?",
                    "null dereference in WSERV: the whole UI stops responding");
    }
    return 0;
}
