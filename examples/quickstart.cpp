// Quickstart: one simulated phone, one week, and the logger at work.
//
// Boots a single Symbian-model smart phone with the failure data logger
// installed, lets a simulated user live with it for a week while faults
// are injected, then runs the analysis pipeline over the collected Log
// File and prints what the logger saw versus what actually happened.
#include <cstdio>

#include "analysis/dataset.hpp"
#include "analysis/discriminator.hpp"
#include "faults/injector.hpp"
#include "faults/rates.hpp"
#include "logger/logger.hpp"
#include "phone/device.hpp"

int main() {
    using namespace symfail;

    sim::Simulator simulator;

    phone::PhoneDevice::Config deviceConfig;
    deviceConfig.name = "quickstart-phone";
    deviceConfig.symbianVersion = "8.0";
    deviceConfig.seed = 42;
    phone::PhoneDevice device{simulator, deviceConfig};

    logger::FailureLogger loggerApp{device};

    // A deliberately unreliable week: scale the paper's rates up ~100x so
    // a single phone shows every mechanism in seven days.
    faults::StudyPlan plan;
    plan.expectedCalls = 6.0 * 7;
    plan.expectedMessages = 8.0 * 7;
    plan.expectedOnHours = 24.0 * 7 * 0.85;
    plan.targetPanics = 18;
    plan.targetFreezes = 6;
    plan.targetSelfShutdowns = 8;
    faults::FaultInjector injector{device, faults::deriveRates(plan), 7};

    device.powerOn();
    simulator.runUntil(sim::TimePoint::origin() + sim::Duration::days(7));

    std::printf("=== quickstart: one phone, one simulated week ===\n\n");
    std::printf("boots: %llu, heartbeats: %llu, panics logged: %llu\n",
                static_cast<unsigned long long>(device.bootCount()),
                static_cast<unsigned long long>(loggerApp.heartbeatsWritten()),
                static_cast<unsigned long long>(loggerApp.panicsLogged()));

    const auto dataset = analysis::LogDataset::build(
        {analysis::PhoneLog{device.name(), loggerApp.logFileContent()}});
    const analysis::ShutdownDiscriminator discriminator;
    const auto classified = discriminator.classify(dataset);

    std::printf("\n-- what the logger reconstructed --\n");
    std::printf("freezes detected:        %zu\n", dataset.freezes().size());
    std::printf("self-shutdowns detected: %zu\n", classified.selfShutdowns.size());
    std::printf("user shutdowns:          %zu\n", classified.userShutdowns.size());
    std::printf("low-battery shutdowns:   %zu\n", classified.lowBattery.size());
    std::printf("panics recorded:         %zu\n", dataset.panics().size());

    const auto& truth = device.groundTruth();
    std::printf("\n-- what actually happened (ground truth) --\n");
    std::printf("freezes:            %zu\n", truth.countOf(phone::TruthKind::Freeze));
    std::printf("self-shutdowns:     %zu\n",
                truth.countOf(phone::TruthKind::SelfShutdown));
    std::printf("night shutdowns:    %zu\n",
                truth.countOf(phone::TruthKind::NightShutdown));
    std::printf("panics injected:    %zu\n",
                truth.countOf(phone::TruthKind::PanicInjected));

    std::printf("\n-- last panic records --\n");
    int shown = 0;
    for (auto it = dataset.panics().rbegin();
         it != dataset.panics().rend() && shown < 5; ++it, ++shown) {
        const auto& rec = it->record;
        std::string apps;
        for (const auto& app : rec.runningApps) {
            if (!apps.empty()) apps += ",";
            apps += app;
        }
        std::printf("%s  %-20s apps=[%s] activity=%s battery=%d%%\n",
                    rec.time.str().c_str(), symbos::toString(rec.panic).c_str(),
                    apps.c_str(), std::string{logger::toString(rec.activity)}.c_str(),
                    rec.batteryPercent);
    }
    return 0;
}
