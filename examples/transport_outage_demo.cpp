// Collection-path walkthrough: five phones upload their Log Files over a
// lossy GPRS-like channel while a three-day mid-campaign outage (days
// 12-15: no coverage at the collection point) swallows everything in
// flight.  Probes print per-phone segment coverage before, during and
// after the window, showing the retransmission machinery falling behind
// and then catching back up — the reason an unreliable harvest path
// still yields near-complete Log Files at campaign end.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/dataset.hpp"
#include "fleet/collection.hpp"
#include "logger/logger.hpp"
#include "phone/device.hpp"
#include "simkernel/simulator.hpp"
#include "transport/channel.hpp"
#include "transport/frame.hpp"
#include "transport/upload_agent.hpp"

int main() {
    using namespace symfail;

    constexpr int kPhones = 5;
    const auto campaignEnd = sim::TimePoint::origin() + sim::Duration::days(30);
    const transport::OutageWindow outage{
        sim::TimePoint::origin() + sim::Duration::days(12),
        sim::TimePoint::origin() + sim::Duration::days(15)};

    std::printf("=== transport outage demo: 5 phones, GPRS blackout days 12-15 ===\n\n");

    sim::Simulator simulator;
    fleet::CollectionServer server;

    struct Unit {
        // Device declared last so it is destroyed first and its power-down
        // hooks still find the logger and agent alive.
        std::unique_ptr<logger::FailureLogger> loggerApp;
        std::unique_ptr<transport::Channel> dataChannel;
        std::unique_ptr<transport::Channel> ackChannel;
        std::unique_ptr<transport::UploadAgent> agent;
        std::unique_ptr<phone::PhoneDevice> device;
    };
    std::vector<Unit> units;

    transport::UploadPolicy policy;
    policy.uploadPeriod = sim::Duration::hours(4);

    for (int i = 0; i < kPhones; ++i) {
        Unit unit;
        phone::PhoneDevice::Config config;
        config.name = "phone-" + std::to_string(i);
        config.seed = 4000 + static_cast<std::uint64_t>(i);
        unit.device = std::make_unique<phone::PhoneDevice>(simulator, config);
        unit.loggerApp = std::make_unique<logger::FailureLogger>(*unit.device);

        auto gprs = transport::ChannelConfig::gprs();
        gprs.outages.push_back(outage);  // one blackout takes both directions
        unit.dataChannel = std::make_unique<transport::Channel>(
            simulator, gprs, 9'000 + static_cast<std::uint64_t>(i));
        unit.ackChannel = std::make_unique<transport::Channel>(
            simulator, gprs, 9'500 + static_cast<std::uint64_t>(i));
        unit.agent = std::make_unique<transport::UploadAgent>(
            *unit.device, *unit.loggerApp, *unit.dataChannel, *unit.ackChannel,
            policy, 9'900 + static_cast<std::uint64_t>(i));

        transport::Channel* ackBack = unit.ackChannel.get();
        unit.dataChannel->setReceiver(
            [&server, ackBack](const std::string& bytes) {
                if (const auto ack = server.receiveFrame(bytes)) {
                    ackBack->send(transport::encodeAck(*ack));
                }
            });
        unit.device->powerOn();
        units.push_back(std::move(unit));
    }

    // Delivery probes around the outage window: how much of each phone's
    // Log File (by bytes) the server holds at that moment.  (The server's
    // own segment coverage stays at 100% during the blackout — it cannot
    // know about segments never advertised to it; comparing against the
    // phone-side truth is what exposes the lag.)
    const auto probe = [&](const char* when) {
        std::printf("%-22s", when);
        for (int i = 0; i < kPhones; ++i) {
            const std::string name = "phone-" + std::to_string(i);
            const double onPhone = static_cast<double>(
                units[static_cast<std::size_t>(i)].loggerApp->logFileContent().size());
            const double onServer = static_cast<double>(
                server.reassembler().reconstruct(name).size());
            const double pct = onPhone > 0.0 ? 100.0 * onServer / onPhone : 100.0;
            std::printf("  %5.1f%%", pct);
        }
        std::printf("\n");
    };
    std::printf("%-22s", "log bytes delivered");
    for (int i = 0; i < kPhones; ++i) std::printf("  phone%d", i);
    std::printf("\n");

    const std::vector<std::pair<double, const char*>> probes{
        {11.9, "day 12 (pre-outage)"},  {13.5, "day 13.5 (mid-outage)"},
        {15.1, "day 15 (restored)"},    {16.0, "day 16 (caught up)"},
        {30.0, "day 30 (campaign end)"}};
    for (const auto& [day, label] : probes) {
        simulator.scheduleAt(
            sim::TimePoint::origin() + sim::Duration::fromSecondsF(day * 86'400.0),
            [&probe, label]() { probe(label); });
    }

    simulator.runUntil(campaignEnd);

    std::printf("\nretransmission catch-up:\n");
    std::uint64_t retransmits = 0;
    std::uint64_t outageDrops = 0;
    std::uint64_t framesSent = 0;
    for (const auto& unit : units) {
        retransmits += unit.agent->stats().retransmits;
        framesSent += unit.agent->stats().framesSent;
        outageDrops += unit.dataChannel->stats().outageDrops +
                       unit.ackChannel->stats().outageDrops;
    }
    std::printf("  frames sent %llu, retransmits %llu, frames swallowed by the outage %llu\n",
                static_cast<unsigned long long>(framesSent),
                static_cast<unsigned long long>(retransmits),
                static_cast<unsigned long long>(outageDrops));

    std::printf("\nfinal completeness (records on server vs on phone):\n");
    for (int i = 0; i < kPhones; ++i) {
        const std::string name = "phone-" + std::to_string(i);
        const auto delivered = analysis::LogDataset::build(
            {{name, server.reassembler().reconstruct(name), 1.0}});
        const auto truth = analysis::LogDataset::build(
            {{name, units[static_cast<std::size_t>(i)].loggerApp->logFileContent(),
              1.0}});
        std::printf("  %-9s coverage %5.1f%%   boots %zu/%zu   panics %zu/%zu\n",
                    name.c_str(), 100.0 * server.coverage(name),
                    delivered.bootCount(), truth.bootCount(),
                    delivered.panics().size(), truth.panics().size());
    }
    return 0;
}
