// Logger tuning walkthrough: how the heartbeat period trades freeze
// timestamp precision against write volume, on a single phone you can
// reason about — a narrated version of the A1 ablation bench.
#include <cstdio>

#include "analysis/dataset.hpp"
#include "logger/logger.hpp"
#include "phone/device.hpp"

int main() {
    using namespace symfail;

    std::printf("=== logger tuning: heartbeat period vs freeze timestamping ===\n\n");
    std::printf("One phone freezes 6 h 4 m 7 s after boot; each row re-runs that\n"
                "day with a different heartbeat period and shows when the logger\n"
                "thinks the freeze happened.\n\n");
    std::printf("%12s  %18s  %14s  %12s\n", "period (s)", "detected freeze at",
                "error (s)", "beats/day");

    for (const int period : {5, 15, 30, 60, 120, 300, 600}) {
        sim::Simulator simulator;
        phone::PhoneDevice::Config config;
        config.name = "tunable";
        config.seed = 55;
        // Quiet user: the freeze is the only event of the day.
        config.profile.callsPerDay = 0.0;
        config.profile.smsPerDay = 0.0;
        config.profile.cameraPerDay = 0.0;
        config.profile.bluetoothPerDay = 0.0;
        config.profile.webPerDay = 0.0;
        config.profile.appSessionsPerDay = 0.0;
        config.profile.nightOffProb = 0.0;
        config.profile.daytimeOffPerDay = 0.0;
        config.profile.quickCyclesPerDay = 0.0;
        phone::PhoneDevice device{simulator, config};

        logger::LoggerConfig loggerConfig;
        loggerConfig.heartbeatPeriod = sim::Duration::seconds(period);
        logger::FailureLogger loggerApp{device, loggerConfig};

        device.powerOn();
        // Off-grid freeze time (not a multiple of any period) so the
        // timestamp error is visible.
        const auto freezeAt = sim::TimePoint::origin() + sim::Duration::hours(6) +
                              sim::Duration::seconds(247);
        simulator.runUntil(freezeAt);
        device.freeze("demo hang");
        simulator.runUntil(freezeAt + sim::Duration::days(1));  // user recovers

        const auto dataset = analysis::LogDataset::build(
            {analysis::PhoneLog{device.name(), loggerApp.logFileContent()}});
        if (dataset.freezes().size() != 1) {
            std::printf("%12d  (freeze not detected!)\n", period);
            continue;
        }
        const auto detected = dataset.freezes()[0].lastAliveAt;
        const double error = (freezeAt - detected).asSecondsF();
        std::printf("%12d  %18s  %14.1f  %12.0f\n", period, detected.str().c_str(),
                    error, 86'400.0 / period);
    }

    std::printf("\nThe error is bounded by one period (the freeze happened after\n"
                "the last ALIVE record); the write cost scales as 1/period. The\n"
                "five-minute coalescence window of the analysis tolerates any\n"
                "period up to ~300 s without losing panic-freeze associations.\n");
    return 0;
}
